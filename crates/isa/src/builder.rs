use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, Cond, FpuOp, Inst, Kind, MemWidth, Operand};
use crate::program::{DataSegment, Procedure, Program};
use crate::reg::Reg;

/// Error produced by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch referenced a label that was never defined.
    UnknownLabel(String),
    /// An instruction failed class validation; the message names the
    /// offending operand.
    InvalidInst {
        /// Instruction index.
        pc: usize,
        /// Description of the violation.
        msg: String,
    },
    /// A data segment base address was not 8-byte aligned.
    UnalignedData(u64),
    /// Two data segments overlap.
    OverlappingData(u64),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            BuildError::UnknownLabel(l) => write!(f, "label `{l}` is never defined"),
            BuildError::InvalidInst { pc, msg } => {
                write!(f, "invalid instruction at {pc}: {msg}")
            }
            BuildError::UnalignedData(a) => {
                write!(f, "data segment base {a:#x} is not 8-byte aligned")
            }
            BuildError::OverlappingData(a) => {
                write!(f, "data segments overlap at address {a:#x}")
            }
        }
    }
}

impl Error for BuildError {}

#[derive(Debug, Clone)]
enum FixSlot {
    Target,
    JmpEntry(usize),
}

#[derive(Debug, Clone)]
struct Fixup {
    pc: usize,
    label: String,
    slot: FixSlot,
}

/// Assembler-style builder for [`Program`]s.
///
/// Instructions are appended in order; branches reference string labels
/// that are resolved to instruction indices by [`ProgramBuilder::build`].
/// ALU emitters accept either a register or an immediate as the second
/// source (anything implementing `Into<Operand>`).
///
/// # Examples
///
/// A countdown loop that sums memory:
///
/// ```
/// use rvp_isa::{ProgramBuilder, Reg, MemWidth};
///
/// # fn main() -> Result<(), rvp_isa::BuildError> {
/// let (ptr, sum, n, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
/// let mut b = ProgramBuilder::new();
/// b.data(0x1000, &[5, 6, 7]);
/// b.li(ptr, 0x1000).li(sum, 0).li(n, 3);
/// b.label("loop");
/// b.ld(v, ptr, 0);
/// b.add(sum, sum, v);
/// b.addi(ptr, ptr, 8);
/// b.subi(n, n, 1);
/// b.bnez(n, "loop");
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.label("loop"), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<Fixup>,
    data: Vec<DataSegment>,
    procs: Vec<(String, usize)>,
    entry_label: Option<String>,
    duplicate: Option<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The index the next emitted instruction will occupy.
    pub fn current_pc(&self) -> usize {
        self.insts.len()
    }

    /// Defines a label at the current position. Redefining a name at the
    /// same position is a no-op; at a different position it is a
    /// duplicate-label error at [`ProgramBuilder::build`].
    pub fn label(&mut self, name: &str) -> &mut Self {
        let pc = self.insts.len();
        self.label_at(name, pc)
    }

    /// Defines a label at an explicit instruction index (used by the
    /// assembler for absolute `@N` targets). Idempotent: re-defining the
    /// same name at the same index is allowed; a conflicting index is a
    /// duplicate-label error at [`ProgramBuilder::build`].
    pub fn label_at(&mut self, name: &str, pc: usize) -> &mut Self {
        match self.labels.get(name) {
            Some(&existing) if existing == pc => {}
            Some(_) => {
                self.duplicate.get_or_insert_with(|| name.to_owned());
            }
            None => {
                self.labels.insert(name.to_owned(), pc);
            }
        }
        self
    }

    /// Begins a procedure at the current position. The procedure extends
    /// until the next `proc` call or the end of the program. Also defines a
    /// label with the procedure's name.
    pub fn proc(&mut self, name: &str) -> &mut Self {
        self.procs.push((name.to_owned(), self.insts.len()));
        self.label(name)
    }

    /// Sets the entry point to a label (defaults to instruction 0).
    pub fn entry(&mut self, label: &str) -> &mut Self {
        self.entry_label = Some(label.to_owned());
        self
    }

    /// Adds an initialized data segment of 64-bit words at `base`.
    pub fn data(&mut self, base: u64, words: &[u64]) -> &mut Self {
        self.data.push(DataSegment { base, words: words.to_vec() });
        self
    }

    /// Adds an initialized data segment of f64 values (stored as raw bits).
    pub fn data_f64(&mut self, base: u64, values: &[f64]) -> &mut Self {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.data.push(DataSegment { base, words });
        self
    }

    /// Reserves `words` zeroed 64-bit words at `base` (a `.bss` section).
    pub fn zeros(&mut self, base: u64, words: usize) -> &mut Self {
        self.data.push(DataSegment { base, words: vec![0; words] });
        self
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Marks the most recently emitted instruction for static RVP
    /// (sets its `rvp_` bit).
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been emitted yet.
    pub fn mark_rvp(&mut self) -> &mut Self {
        self.insts.last_mut().expect("mark_rvp on empty program").rvp = true;
        self
    }

    fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.inst(Inst::new(Kind::Alu { op, dst, a, b: b.into() }))
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, a, b)
    }

    /// `dst = a + imm` (alias of [`add`](Self::add) for readability)
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Add, dst, a, imm)
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, b)
    }

    /// `dst = a - imm`
    pub fn subi(&mut self, dst: Reg, a: Reg, imm: i64) -> &mut Self {
        self.alu(AluOp::Sub, dst, a, imm)
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, dst, a, b)
    }

    /// `dst = a / b` (signed; division by zero yields 0)
    pub fn div(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Div, dst, a, b)
    }

    /// `dst = a % b` (signed; remainder by zero yields `a`)
    pub fn rem(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Rem, dst, a, b)
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, dst, a, b)
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, dst, a, b)
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, dst, a, b)
    }

    /// `dst = a << b`
    pub fn sll(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sll, dst, a, b)
    }

    /// `dst = a >> b` (logical)
    pub fn srl(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Srl, dst, a, b)
    }

    /// `dst = a >> b` (arithmetic)
    pub fn sra(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sra, dst, a, b)
    }

    /// `dst = (a == b) as u64`
    pub fn cmpeq(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::CmpEq, dst, a, b)
    }

    /// `dst = (a < b) as u64` (signed)
    pub fn cmplt(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::CmpLt, dst, a, b)
    }

    /// `dst = (a < b) as u64` (unsigned)
    pub fn cmpltu(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::CmpLtu, dst, a, b)
    }

    /// `dst = (a <= b) as u64` (signed)
    pub fn cmple(&mut self, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::CmpLe, dst, a, b)
    }

    /// Register move, encoded as `or dst, src, #0`.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.alu(AluOp::Or, dst, src, 0)
    }

    /// `dst = imm` (64-bit immediate load)
    pub fn li(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::new(Kind::Li { dst, imm }))
    }

    /// `dst = value` (f64 constant load into an FP register)
    pub fn lif(&mut self, dst: Reg, value: f64) -> &mut Self {
        self.inst(Inst::new(Kind::Lif { dst, bits: value.to_bits() }))
    }

    fn fpu(&mut self, op: FpuOp, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.inst(Inst::new(Kind::Fpu { op, dst, a, b }))
    }

    /// `dst = a + b` (f64)
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FAdd, dst, a, b)
    }

    /// `dst = a - b` (f64)
    pub fn fsub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FSub, dst, a, b)
    }

    /// `dst = a * b` (f64)
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FMul, dst, a, b)
    }

    /// `dst = a / b` (f64)
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FDiv, dst, a, b)
    }

    /// `dst = (a == b) as u64` bits (f64 compare)
    pub fn fcmpeq(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FCmpEq, dst, a, b)
    }

    /// `dst = (a < b) as u64` bits (f64 compare)
    pub fn fcmplt(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FCmpLt, dst, a, b)
    }

    /// `dst = (a <= b) as u64` bits (f64 compare)
    pub fn fcmple(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.fpu(FpuOp::FCmpLe, dst, a, b)
    }

    /// FP register move, encoded as `fadd dst, src, f31`.
    pub fn fmov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.fpu(FpuOp::FAdd, dst, src, Reg::FZERO)
    }

    /// `dst = src as f64` (integer to FP convert)
    pub fn itof(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::new(Kind::Itof { dst, src }))
    }

    /// `dst = src as i64` (FP to integer convert, truncating)
    pub fn ftoi(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::new(Kind::Ftoi { dst, src }))
    }

    /// 64-bit load: `dst = mem[base + disp]`. The destination's register
    /// class selects an integer or FP load.
    pub fn ld(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::ld(dst, base, disp, MemWidth::D))
    }

    /// 32-bit load (zero-extended).
    pub fn ldw(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::ld(dst, base, disp, MemWidth::W))
    }

    /// 8-bit load (zero-extended).
    pub fn ldb(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::ld(dst, base, disp, MemWidth::B))
    }

    /// 64-bit store: `mem[base + disp] = src`.
    pub fn st(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::st(src, base, disp, MemWidth::D))
    }

    /// 32-bit store (truncating).
    pub fn stw(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::st(src, base, disp, MemWidth::W))
    }

    /// 8-bit store (truncating).
    pub fn stb(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        self.inst(Inst::st(src, base, disp, MemWidth::B))
    }

    fn branch_fixup(&mut self, label: &str, slot: FixSlot) {
        self.fixups.push(Fixup { pc: self.insts.len(), label: label.to_owned(), slot });
    }

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: &str) -> &mut Self {
        self.branch_fixup(label, FixSlot::Target);
        self.inst(Inst::new(Kind::Br { target: usize::MAX }))
    }

    fn bcond(&mut self, cond: Cond, src: Reg, label: &str) -> &mut Self {
        self.branch_fixup(label, FixSlot::Target);
        self.inst(Inst::new(Kind::BrCond { cond, src, target: usize::MAX }))
    }

    /// Branch to `label` if `src == 0`.
    pub fn beqz(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Eq, src, label)
    }

    /// Branch to `label` if `src != 0`.
    pub fn bnez(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Ne, src, label)
    }

    /// Branch to `label` if `src < 0` (signed).
    pub fn bltz(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Lt, src, label)
    }

    /// Branch to `label` if `src <= 0` (signed).
    pub fn blez(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Le, src, label)
    }

    /// Branch to `label` if `src > 0` (signed).
    pub fn bgtz(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Gt, src, label)
    }

    /// Branch to `label` if `src >= 0` (signed).
    pub fn bgez(&mut self, src: Reg, label: &str) -> &mut Self {
        self.bcond(Cond::Ge, src, label)
    }

    /// Branch to subroutine at `label`, writing the return address into
    /// `dst` (conventionally `r26`).
    pub fn bsr(&mut self, dst: Reg, label: &str) -> &mut Self {
        self.branch_fixup(label, FixSlot::Target);
        self.inst(Inst::new(Kind::Bsr { dst, target: usize::MAX }))
    }

    /// Calls `label` using the conventional return-address register `r26`.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.bsr(crate::analysis::abi::RA, label)
    }

    /// Returns through `base` (conventionally `r26`).
    pub fn ret(&mut self, base: Reg) -> &mut Self {
        self.inst(Inst::new(Kind::Ret { base }))
    }

    /// Indirect jump through `base`; `labels` must enumerate every possible
    /// target (a jump table).
    pub fn jmp(&mut self, base: Reg, labels: &[&str]) -> &mut Self {
        for (k, l) in labels.iter().enumerate() {
            self.branch_fixup(l, FixSlot::JmpEntry(k));
        }
        self.inst(Inst::new(Kind::Jmp { base, targets: vec![usize::MAX; labels.len()] }))
    }

    /// Stops the program.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::new(Kind::Halt))
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::new(Kind::Nop))
    }

    /// Resolves labels, validates every instruction and data segment, and
    /// produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for duplicate or unknown labels, operand
    /// class violations, or malformed data segments.
    pub fn build(&mut self) -> Result<Program, BuildError> {
        if let Some(dup) = &self.duplicate {
            return Err(BuildError::DuplicateLabel(dup.clone()));
        }
        let mut insts = self.insts.clone();
        for fix in &self.fixups {
            let target = *self
                .labels
                .get(&fix.label)
                .ok_or_else(|| BuildError::UnknownLabel(fix.label.clone()))?;
            match (&mut insts[fix.pc].kind, &fix.slot) {
                (Kind::Br { target: t }, FixSlot::Target)
                | (Kind::BrCond { target: t, .. }, FixSlot::Target)
                | (Kind::Bsr { target: t, .. }, FixSlot::Target) => *t = target,
                (Kind::Jmp { targets, .. }, FixSlot::JmpEntry(k)) => targets[*k] = target,
                _ => unreachable!("fixup recorded against non-branch instruction"),
            }
        }
        for (pc, inst) in insts.iter().enumerate() {
            inst.validate().map_err(|msg| BuildError::InvalidInst { pc, msg })?;
        }
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for seg in &self.data {
            if seg.base % 8 != 0 {
                return Err(BuildError::UnalignedData(seg.base));
            }
            let r = seg.byte_range();
            for (s, e) in &ranges {
                if r.start < *e && *s < r.end {
                    return Err(BuildError::OverlappingData(r.start.max(*s)));
                }
            }
            ranges.push((r.start, r.end));
        }
        let mut procedures = Vec::new();
        for (i, (name, start)) in self.procs.iter().enumerate() {
            let end = self.procs.get(i + 1).map_or(insts.len(), |(_, s)| *s);
            procedures.push(Procedure { name: name.clone(), range: *start..end });
        }
        let entry = match &self.entry_label {
            Some(l) => *self.labels.get(l).ok_or_else(|| BuildError::UnknownLabel(l.clone()))?,
            None => 0,
        };
        Ok(Program::from_parts(insts, self.data.clone(), procedures, self.labels.clone(), entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Flow;

    #[test]
    fn branches_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        b.label("back");
        b.nop();
        b.br("fwd");
        b.br("back");
        b.label("fwd");
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(1).unwrap().flow(), Flow::Always(3));
        assert_eq!(p.inst(2).unwrap().flow(), Flow::Always(0));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.br("nowhere");
        assert_eq!(b.build(), Err(BuildError::UnknownLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x").nop();
        b.label("x").halt();
        assert_eq!(b.build(), Err(BuildError::DuplicateLabel("x".into())));
    }

    #[test]
    fn invalid_operand_class_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::int(1), Reg::int(2), Reg::int(3));
        b.fadd(Reg::fp(0), Reg::fp(1), Reg::fp(2));
        assert!(b.build().is_ok());

        let mut b = ProgramBuilder::new();
        b.inst(Inst::new(Kind::Alu {
            op: AluOp::Add,
            dst: Reg::int(1),
            a: Reg::fp(2),
            b: Operand::Imm(0),
        }));
        assert!(matches!(b.build(), Err(BuildError::InvalidInst { pc: 0, .. })));
    }

    #[test]
    fn jump_tables_resolve_every_entry() {
        let mut b = ProgramBuilder::new();
        b.jmp(Reg::int(1), &["a", "b"]);
        b.label("a").nop();
        b.label("b").halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).unwrap().flow(), Flow::Indirect(vec![1, 2]));
    }

    #[test]
    fn overlapping_data_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[1, 2, 3]);
        b.data(0x1010, &[4]);
        b.halt();
        assert!(matches!(b.build(), Err(BuildError::OverlappingData(_))));
    }

    #[test]
    fn unaligned_data_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.data(0x1001, &[1]);
        b.halt();
        assert_eq!(b.build(), Err(BuildError::UnalignedData(0x1001)));
    }

    #[test]
    fn entry_label_is_respected() {
        let mut b = ProgramBuilder::new();
        b.nop();
        b.label("start");
        b.halt();
        b.entry("start");
        assert_eq!(b.build().unwrap().entry(), 1);
    }

    #[test]
    fn mark_rvp_sets_the_bit_on_the_last_inst() {
        let mut b = ProgramBuilder::new();
        b.ld(Reg::int(1), Reg::int(2), 0).mark_rvp();
        b.halt();
        let p = b.build().unwrap();
        assert!(p.inst(0).unwrap().rvp);
        assert!(!p.inst(1).unwrap().rvp);
    }

    #[test]
    fn mov_is_or_with_zero_immediate() {
        let mut b = ProgramBuilder::new();
        b.mov(Reg::int(1), Reg::int(2));
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).unwrap().to_string(), "or r1, r2, #0");
    }
}
