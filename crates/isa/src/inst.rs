use std::fmt;

use crate::reg::{Reg, RegClass};

/// Integer ALU operations (three-operand, register or immediate second
/// source).
///
/// Comparison operations produce `0` or `1` in the destination register,
/// which conditional branches then test against zero — the Alpha idiom the
/// paper's workloads compile to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Wrapping 64-bit multiplication (long latency).
    Mul,
    /// Signed 64-bit division; division by zero yields 0 (no trap).
    Div,
    /// Signed 64-bit remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR (also the canonical register move: `or dst, src, #0`).
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// Set-if-equal: `dst = (a == b) as u64`.
    CmpEq,
    /// Set-if-less-than, signed.
    CmpLt,
    /// Set-if-less-than, unsigned.
    CmpLtu,
    /// Set-if-less-or-equal, signed.
    CmpLe,
}

/// Floating-point operations over f64 values held in FP registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// f64 addition.
    FAdd,
    /// f64 subtraction.
    FSub,
    /// f64 multiplication.
    FMul,
    /// f64 division (long latency).
    FDiv,
    /// Set-if-equal: writes integer `0`/`1` bits into the FP destination.
    FCmpEq,
    /// Set-if-less-than.
    FCmpLt,
    /// Set-if-less-or-equal.
    FCmpLe,
}

/// Branch conditions; the operand register is compared (as a signed 64-bit
/// integer, or raw bits for FP registers) against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if the register equals zero.
    Eq,
    /// Branch if the register is non-zero.
    Ne,
    /// Branch if the register is negative.
    Lt,
    /// Branch if the register is zero or negative.
    Le,
    /// Branch if the register is positive.
    Gt,
    /// Branch if the register is zero or positive.
    Ge,
}

/// Memory access widths. Loads zero-extend; stores truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Four bytes (must be 4-byte aligned).
    W,
    /// Eight bytes (must be 8-byte aligned). The only width FP loads and
    /// stores support.
    D,
}

impl MemWidth {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// The second source of an ALU instruction: a register or a small
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand (sign-extended to 64 bits).
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Operand {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// The role a register plays in an instruction, used when rewriting
/// register assignments (see [`Inst::map_regs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRole {
    /// The register is written by the instruction.
    Dst,
    /// The register is read by the instruction.
    Src,
}

/// The operation an instruction performs.
///
/// Branch targets are absolute instruction indices, resolved from labels by
/// [`crate::ProgramBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// Integer ALU operation: `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (integer) register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source: register or immediate.
        b: Operand,
    },
    /// Floating-point operation: `dst = op(a, b)` over f64 bit patterns.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination (FP) register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// Convert a signed integer register to f64: `dst = src as f64`.
    Itof {
        /// FP destination.
        dst: Reg,
        /// Integer source.
        src: Reg,
    },
    /// Convert f64 to a signed integer (truncating): `dst = src as i64`.
    Ftoi {
        /// Integer destination.
        dst: Reg,
        /// FP source.
        src: Reg,
    },
    /// Load a 64-bit immediate into an integer register.
    Li {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Load an f64 constant into an FP register.
    Lif {
        /// Destination register.
        dst: Reg,
        /// Constant value (stored as raw bits so `NaN`s round-trip).
        bits: u64,
    },
    /// Load from memory: `dst = mem[base + disp]`. The destination's class
    /// selects an integer or FP load; FP loads must use width `D`.
    Ld {
        /// Destination register.
        dst: Reg,
        /// Base address register (integer).
        base: Reg,
        /// Byte displacement.
        disp: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Store to memory: `mem[base + disp] = src`.
    St {
        /// Source register (integer or FP).
        src: Reg,
        /// Base address register (integer).
        base: Reg,
        /// Byte displacement.
        disp: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Unconditional branch to an instruction index.
    Br {
        /// Target instruction index.
        target: usize,
    },
    /// Conditional branch: taken if `cond(src)` holds.
    BrCond {
        /// Condition tested against zero.
        cond: Cond,
        /// Register tested.
        src: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Branch to subroutine: `dst = pc + 1; goto target`. By convention
    /// `dst` is `r26` (the return-address register).
    Bsr {
        /// Register receiving the return address (an instruction index).
        dst: Reg,
        /// Callee entry instruction index.
        target: usize,
    },
    /// Return: jump to the instruction index held in `base`. Predicted with
    /// the return-address stack.
    Ret {
        /// Register holding the return address.
        base: Reg,
    },
    /// Indirect jump to the instruction index in `base`; the possible
    /// targets must be declared so the CFG stays analyzable (jump tables).
    Jmp {
        /// Register holding the target instruction index.
        base: Reg,
        /// All instruction indices the jump may reach.
        targets: Vec<usize>,
    },
    /// Stop execution.
    Halt,
    /// No operation.
    Nop,
}

/// Functional-unit / latency class of an instruction, used by the timing
/// model for issue-port routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer operation (ALU, moves, immediates, branches).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// FP add/sub/compare/convert.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

/// Control-flow behaviour of an instruction, as seen by the CFG builder and
/// the fetch unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flow {
    /// Falls through to the next instruction.
    FallThrough,
    /// Always transfers to `target` (direct branches and calls).
    Always(usize),
    /// Either falls through or transfers to `target`.
    Conditional(usize),
    /// Transfers to one of several statically known targets.
    Indirect(Vec<usize>),
    /// Returns from a procedure (target known only dynamically).
    Return,
    /// Ends the program.
    Halt,
}

/// A single machine instruction: an operation [`Kind`] plus the static RVP
/// marking bit.
///
/// When [`Inst::rvp`] is set, the hardware treats the instruction as an
/// `rvp_`-prefixed opcode: the value already in the destination
/// architectural register is used as a prediction for the value the
/// instruction will produce (the paper's *static register value
/// prediction*, Section 4.1).
///
/// # Examples
///
/// ```
/// use rvp_isa::{Inst, Reg, MemWidth};
///
/// let ld = Inst::ld(Reg::int(3), Reg::int(5), 800, MemWidth::D);
/// assert!(ld.is_load());
/// assert_eq!(ld.dst(), Some(Reg::int(3)));
/// let rvp_ld = ld.with_rvp();
/// assert!(rvp_ld.rvp);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub kind: Kind,
    /// Static RVP marking: predict the prior destination-register value.
    pub rvp: bool,
}

impl Inst {
    /// Wraps a [`Kind`] with the RVP bit clear.
    pub fn new(kind: Kind) -> Inst {
        Inst { kind, rvp: false }
    }

    /// Convenience constructor for a load.
    pub fn ld(dst: Reg, base: Reg, disp: i64, width: MemWidth) -> Inst {
        Inst::new(Kind::Ld { dst, base, disp, width })
    }

    /// Convenience constructor for a store.
    pub fn st(src: Reg, base: Reg, disp: i64, width: MemWidth) -> Inst {
        Inst::new(Kind::St { src, base, disp, width })
    }

    /// Returns the same instruction with the static RVP bit set.
    pub fn with_rvp(mut self) -> Inst {
        self.rvp = true;
        self
    }

    /// The architectural register written by this instruction, if any.
    /// Writes to the zero registers are reported here but discarded at
    /// execution.
    pub fn dst(&self) -> Option<Reg> {
        match &self.kind {
            Kind::Alu { dst, .. }
            | Kind::Fpu { dst, .. }
            | Kind::Itof { dst, .. }
            | Kind::Ftoi { dst, .. }
            | Kind::Li { dst, .. }
            | Kind::Lif { dst, .. }
            | Kind::Ld { dst, .. }
            | Kind::Bsr { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The architectural registers read by this instruction (at most two),
    /// in operand order.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match &self.kind {
            Kind::Alu { a, b, .. } => match b {
                Operand::Reg(b) => [Some(*a), Some(*b)],
                Operand::Imm(_) => [Some(*a), None],
            },
            Kind::Fpu { a, b, .. } => [Some(*a), Some(*b)],
            Kind::Itof { src, .. } | Kind::Ftoi { src, .. } => [Some(*src), None],
            Kind::Ld { base, .. } => [Some(*base), None],
            Kind::St { src, base, .. } => [Some(*src), Some(*base)],
            Kind::BrCond { src, .. } => [Some(*src), None],
            Kind::Ret { base } | Kind::Jmp { base, .. } => [Some(*base), None],
            _ => [None, None],
        }
    }

    /// Whether this instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(self.kind, Kind::Ld { .. })
    }

    /// Whether this instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self.kind, Kind::St { .. })
    }

    /// Whether this instruction may redirect control flow (branches,
    /// jumps, calls, returns).
    pub fn is_control(&self) -> bool {
        !matches!(self.flow(), Flow::FallThrough) || matches!(self.kind, Kind::Halt)
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.kind, Kind::BrCond { .. })
    }

    /// Whether this is a subroutine call.
    pub fn is_call(&self) -> bool {
        matches!(self.kind, Kind::Bsr { .. })
    }

    /// Whether this is a subroutine return.
    pub fn is_return(&self) -> bool {
        matches!(self.kind, Kind::Ret { .. })
    }

    /// Control-flow behaviour for CFG construction and fetch.
    pub fn flow(&self) -> Flow {
        match &self.kind {
            Kind::Br { target } | Kind::Bsr { target, .. } => Flow::Always(*target),
            Kind::BrCond { target, .. } => Flow::Conditional(*target),
            Kind::Jmp { targets, .. } => Flow::Indirect(targets.clone()),
            Kind::Ret { .. } => Flow::Return,
            Kind::Halt => Flow::Halt,
            _ => Flow::FallThrough,
        }
    }

    /// Functional-unit class, or `None` for pure control/`Nop`/`Halt`
    /// instructions (which execute on an integer ALU port).
    pub fn exec_class(&self) -> ExecClass {
        match &self.kind {
            Kind::Alu { op, .. } => match op {
                AluOp::Mul => ExecClass::IntMul,
                AluOp::Div | AluOp::Rem => ExecClass::IntDiv,
                _ => ExecClass::IntAlu,
            },
            Kind::Fpu { op, .. } => match op {
                FpuOp::FMul => ExecClass::FpMul,
                FpuOp::FDiv => ExecClass::FpDiv,
                _ => ExecClass::FpAdd,
            },
            Kind::Itof { .. } | Kind::Ftoi { .. } => ExecClass::FpAdd,
            Kind::Ld { .. } => ExecClass::Load,
            Kind::St { .. } => ExecClass::Store,
            Kind::Lif { .. } => ExecClass::IntAlu,
            _ => ExecClass::IntAlu,
        }
    }

    /// Which instruction queue (by register class) the instruction
    /// dispatches to: FP arithmetic to the FP queue, everything else —
    /// including FP loads/stores, which execute on the integer load/store
    /// ports — to the integer queue.
    pub fn queue_class(&self) -> RegClass {
        match self.exec_class() {
            ExecClass::FpAdd | ExecClass::FpMul | ExecClass::FpDiv => RegClass::Fp,
            _ => RegClass::Int,
        }
    }

    /// Rewrites every register operand through `f`, which receives the
    /// register and its [`RegRole`]. Used by the register-reallocation
    /// pass.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg, RegRole) -> Reg) {
        use RegRole::{Dst, Src};
        match &mut self.kind {
            Kind::Alu { dst, a, b, .. } => {
                *a = f(*a, Src);
                if let Operand::Reg(r) = b {
                    *r = f(*r, Src);
                }
                *dst = f(*dst, Dst);
            }
            Kind::Fpu { dst, a, b, .. } => {
                *a = f(*a, Src);
                *b = f(*b, Src);
                *dst = f(*dst, Dst);
            }
            Kind::Itof { dst, src } | Kind::Ftoi { dst, src } => {
                *src = f(*src, Src);
                *dst = f(*dst, Dst);
            }
            Kind::Li { dst, .. } | Kind::Lif { dst, .. } | Kind::Bsr { dst, .. } => {
                *dst = f(*dst, Dst);
            }
            Kind::Ld { dst, base, .. } => {
                *base = f(*base, Src);
                *dst = f(*dst, Dst);
            }
            Kind::St { src, base, .. } => {
                *src = f(*src, Src);
                *base = f(*base, Src);
            }
            Kind::BrCond { src, .. } => *src = f(*src, Src),
            Kind::Ret { base } | Kind::Jmp { base, .. } => *base = f(*base, Src),
            Kind::Br { .. } | Kind::Halt | Kind::Nop => {}
        }
    }

    /// Checks register-class correctness (e.g. ALU operands are integer
    /// registers, FP operands are FP registers, load bases are integer).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let want = |r: Reg, class: RegClass, what: &str| -> Result<(), String> {
            if r.class() == class {
                Ok(())
            } else {
                Err(format!("{what} of `{self}` must be a {class} register, got {r}"))
            }
        };
        use RegClass::{Fp, Int};
        match &self.kind {
            Kind::Alu { dst, a, b, .. } => {
                want(*dst, Int, "destination")?;
                want(*a, Int, "source")?;
                if let Operand::Reg(b) = b {
                    want(*b, Int, "source")?;
                }
            }
            Kind::Fpu { dst, a, b, .. } => {
                want(*dst, Fp, "destination")?;
                want(*a, Fp, "source")?;
                want(*b, Fp, "source")?;
            }
            Kind::Itof { dst, src } => {
                want(*dst, Fp, "destination")?;
                want(*src, Int, "source")?;
            }
            Kind::Ftoi { dst, src } => {
                want(*dst, Int, "destination")?;
                want(*src, Fp, "source")?;
            }
            Kind::Li { dst, .. } => want(*dst, Int, "destination")?,
            Kind::Lif { dst, .. } => want(*dst, Fp, "destination")?,
            Kind::Ld { dst, base, width, .. } => {
                want(*base, Int, "base")?;
                if dst.class() == Fp && *width != MemWidth::D {
                    return Err(format!("fp load `{self}` must use width D"));
                }
            }
            Kind::St { src, base, width, .. } => {
                want(*base, Int, "base")?;
                if src.class() == Fp && *width != MemWidth::D {
                    return Err(format!("fp store `{self}` must use width D"));
                }
            }
            Kind::Bsr { dst, .. } => want(*dst, Int, "destination")?,
            Kind::Ret { base } | Kind::Jmp { base, .. } => want(*base, Int, "target")?,
            Kind::BrCond { src, .. } => {
                // Either class is allowed: FP compares write 0/1 bits that
                // integer-style conditions test correctly.
                let _ = src;
            }
            Kind::Br { .. } | Kind::Halt | Kind::Nop => {}
        }
        Ok(())
    }
}

impl From<Kind> for Inst {
    fn from(kind: Kind) -> Inst {
        Inst::new(kind)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rvp {
            f.write_str("rvp_")?;
        }
        match &self.kind {
            Kind::Alu { op, dst, a, b } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Mul => "mul",
                    AluOp::Div => "div",
                    AluOp::Rem => "rem",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Sll => "sll",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::CmpEq => "cmpeq",
                    AluOp::CmpLt => "cmplt",
                    AluOp::CmpLtu => "cmpltu",
                    AluOp::CmpLe => "cmple",
                };
                write!(f, "{name} {dst}, {a}, {b}")
            }
            Kind::Fpu { op, dst, a, b } => {
                let name = match op {
                    FpuOp::FAdd => "fadd",
                    FpuOp::FSub => "fsub",
                    FpuOp::FMul => "fmul",
                    FpuOp::FDiv => "fdiv",
                    FpuOp::FCmpEq => "fcmpeq",
                    FpuOp::FCmpLt => "fcmplt",
                    FpuOp::FCmpLe => "fcmple",
                };
                write!(f, "{name} {dst}, {a}, {b}")
            }
            Kind::Itof { dst, src } => write!(f, "itof {dst}, {src}"),
            Kind::Ftoi { dst, src } => write!(f, "ftoi {dst}, {src}"),
            Kind::Li { dst, imm } => write!(f, "li {dst}, #{imm}"),
            Kind::Lif { dst, bits } => write!(f, "lif {dst}, #{}", f64::from_bits(*bits)),
            Kind::Ld { dst, base, disp, width } => {
                write!(f, "ld{} {dst}, {disp}({base})", width_suffix(*width))
            }
            Kind::St { src, base, disp, width } => {
                write!(f, "st{} {src}, {disp}({base})", width_suffix(*width))
            }
            Kind::Br { target } => write!(f, "br @{target}"),
            Kind::BrCond { cond, src, target } => {
                let name = match cond {
                    Cond::Eq => "beq",
                    Cond::Ne => "bne",
                    Cond::Lt => "blt",
                    Cond::Le => "ble",
                    Cond::Gt => "bgt",
                    Cond::Ge => "bge",
                };
                write!(f, "{name} {src}, @{target}")
            }
            Kind::Bsr { dst, target } => write!(f, "bsr {dst}, @{target}"),
            Kind::Ret { base } => write!(f, "ret ({base})"),
            Kind::Jmp { base, targets } => {
                write!(f, "jmp ({base}) ->")?;
                for (i, t) in targets.iter().enumerate() {
                    write!(f, "{} @{t}", if i == 0 { "" } else { "," })?;
                }
                Ok(())
            }
            Kind::Halt => f.write_str("halt"),
            Kind::Nop => f.write_str("nop"),
        }
    }
}

fn width_suffix(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(dst: u8, a: u8, b: u8) -> Inst {
        Inst::new(Kind::Alu {
            op: AluOp::Add,
            dst: Reg::int(dst),
            a: Reg::int(a),
            b: Operand::Reg(Reg::int(b)),
        })
    }

    #[test]
    fn dst_and_srcs() {
        let i = add(1, 2, 3);
        assert_eq!(i.dst(), Some(Reg::int(1)));
        assert_eq!(i.srcs(), [Some(Reg::int(2)), Some(Reg::int(3))]);

        let st = Inst::st(Reg::int(4), Reg::int(5), 8, MemWidth::D);
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), [Some(Reg::int(4)), Some(Reg::int(5))]);
    }

    #[test]
    fn immediate_operand_is_not_a_source_register() {
        let i = Inst::new(Kind::Alu {
            op: AluOp::Add,
            dst: Reg::int(1),
            a: Reg::int(2),
            b: Operand::Imm(7),
        });
        assert_eq!(i.srcs(), [Some(Reg::int(2)), None]);
    }

    #[test]
    fn exec_classes() {
        assert_eq!(add(1, 2, 3).exec_class(), ExecClass::IntAlu);
        let mul = Inst::new(Kind::Alu {
            op: AluOp::Mul,
            dst: Reg::int(1),
            a: Reg::int(2),
            b: Operand::Imm(3),
        });
        assert_eq!(mul.exec_class(), ExecClass::IntMul);
        let ld = Inst::ld(Reg::fp(1), Reg::int(2), 0, MemWidth::D);
        assert_eq!(ld.exec_class(), ExecClass::Load);
        // FP loads dispatch to the integer (load/store) queue.
        assert_eq!(ld.queue_class(), RegClass::Int);
        let fadd =
            Inst::new(Kind::Fpu { op: FpuOp::FAdd, dst: Reg::fp(1), a: Reg::fp(2), b: Reg::fp(3) });
        assert_eq!(fadd.queue_class(), RegClass::Fp);
    }

    #[test]
    fn map_regs_rewrites_all_operands() {
        let mut i = add(1, 2, 3);
        i.map_regs(|r, _| Reg::int(r.num() + 10));
        assert_eq!(i.dst(), Some(Reg::int(11)));
        assert_eq!(i.srcs(), [Some(Reg::int(12)), Some(Reg::int(13))]);
    }

    #[test]
    fn map_regs_distinguishes_roles() {
        let mut i = add(1, 1, 1);
        i.map_regs(|r, role| match role {
            RegRole::Dst => Reg::int(r.num() + 1),
            RegRole::Src => r,
        });
        assert_eq!(i.dst(), Some(Reg::int(2)));
        assert_eq!(i.srcs(), [Some(Reg::int(1)), Some(Reg::int(1))]);
    }

    #[test]
    fn validate_rejects_class_mismatches() {
        let bad = Inst::new(Kind::Alu {
            op: AluOp::Add,
            dst: Reg::fp(1),
            a: Reg::int(2),
            b: Operand::Imm(0),
        });
        assert!(bad.validate().is_err());
        let bad_fp_load = Inst::ld(Reg::fp(1), Reg::int(2), 0, MemWidth::W);
        assert!(bad_fp_load.validate().is_err());
        assert!(add(1, 2, 3).validate().is_ok());
    }

    #[test]
    fn flow_classification() {
        assert_eq!(add(1, 2, 3).flow(), Flow::FallThrough);
        assert_eq!(Inst::new(Kind::Br { target: 5 }).flow(), Flow::Always(5));
        assert_eq!(
            Inst::new(Kind::BrCond { cond: Cond::Eq, src: Reg::int(1), target: 9 }).flow(),
            Flow::Conditional(9)
        );
        assert!(Inst::new(Kind::Halt).is_control());
        assert!(!add(1, 2, 3).is_control());
    }

    #[test]
    fn display_round_trips_basic_shapes() {
        assert_eq!(add(1, 2, 3).to_string(), "add r1, r2, r3");
        let ld = Inst::ld(Reg::int(3), Reg::int(5), 800, MemWidth::D).with_rvp();
        assert_eq!(ld.to_string(), "rvp_ldd r3, 800(r5)");
    }
}
