//! Web liveness, interference graphs and graph colouring.

use rvp_isa::cfg::Cfg;
use rvp_isa::{Program, Reg, RegClass};

use crate::webs::{WebId, Webs};

/// Live-after sets of webs, one bitset per instruction in the procedure.
#[derive(Debug, Clone)]
pub struct WebLiveness {
    start: usize,
    words: usize,
    /// `after[pc - start]` is a bitset of webs live after that point.
    after: Vec<Vec<u64>>,
}

impl WebLiveness {
    /// Computes per-instruction web liveness for one procedure.
    pub fn compute(_program: &Program, cfg: &Cfg, webs: &Webs) -> WebLiveness {
        let range = cfg.procedure().range.clone();
        let n = webs.len();
        let words = n.div_ceil(64).max(1);
        let blocks = cfg.blocks();
        let nb = blocks.len();

        // Per-instruction use/def web sets.
        let mut use_at: Vec<Vec<WebId>> = vec![Vec::new(); range.len()];
        for (pc, _, w) in webs.uses() {
            use_at[pc - range.start].push(w);
        }
        for &(pc, w) in webs.implicit_uses() {
            use_at[pc - range.start].push(w);
        }

        let mut use_b = vec![vec![0u64; words]; nb];
        let mut def_b = vec![vec![0u64; words]; nb];
        for (b, block) in blocks.iter().enumerate() {
            for pc in block.range.clone() {
                for &w in &use_at[pc - range.start] {
                    if def_b[b][w / 64] & (1 << (w % 64)) == 0 {
                        use_b[b][w / 64] |= 1 << (w % 64);
                    }
                }
                if let Some(w) = webs.def_web(pc) {
                    def_b[b][w / 64] |= 1 << (w % 64);
                }
            }
        }

        let mut live_in = vec![vec![0u64; words]; nb];
        let mut live_out = vec![vec![0u64; words]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let mut out = vec![0u64; words];
                for &s in &blocks[b].succs {
                    for w in 0..words {
                        out[w] |= live_in[s][w];
                    }
                }
                let mut inn = out.clone();
                for w in 0..words {
                    inn[w] = use_b[b][w] | (inn[w] & !def_b[b][w]);
                }
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }

        let mut after = vec![vec![0u64; words]; range.len()];
        for (b, block) in blocks.iter().enumerate() {
            let mut live = live_out[b].clone();
            for pc in block.range.clone().rev() {
                after[pc - range.start] = live.clone();
                if let Some(w) = webs.def_web(pc) {
                    live[w / 64] &= !(1 << (w % 64));
                }
                for &w in &use_at[pc - range.start] {
                    live[w / 64] |= 1 << (w % 64);
                }
            }
        }

        WebLiveness { start: range.start, words, after }
    }

    /// Webs live after instruction `pc`.
    pub fn live_after(&self, pc: usize) -> impl Iterator<Item = WebId> + '_ {
        let row = &self.after[pc - self.start];
        row.iter().enumerate().flat_map(|(wi, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Whether web `w` is live after `pc`.
    pub fn is_live_after(&self, pc: usize, w: WebId) -> bool {
        self.after[pc - self.start][w / 64] & (1 << (w % 64)) != 0
    }

    fn words(&self) -> usize {
        self.words
    }
}

/// An undirected interference graph over webs (bitset adjacency).
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    n: usize,
    words: usize,
    adj: Vec<u64>,
}

impl InterferenceGraph {
    /// Creates an edgeless graph over `n` webs.
    pub fn new(n: usize) -> InterferenceGraph {
        let words = n.div_ceil(64).max(1);
        InterferenceGraph { n, words, adj: vec![0; n * words] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds an undirected edge (self-edges are ignored).
    pub fn add_edge(&mut self, a: WebId, b: WebId) {
        if a == b {
            return;
        }
        self.adj[a * self.words + b / 64] |= 1 << (b % 64);
        self.adj[b * self.words + a / 64] |= 1 << (a % 64);
    }

    /// Whether `a` and `b` interfere.
    pub fn interferes(&self, a: WebId, b: WebId) -> bool {
        a != b && self.adj[a * self.words + b / 64] & (1 << (b % 64)) != 0
    }

    /// Iterates over the neighbours of `a`.
    pub fn neighbors(&self, a: WebId) -> impl Iterator<Item = WebId> + '_ {
        let row = &self.adj[a * self.words..(a + 1) * self.words];
        row.iter().enumerate().flat_map(|(wi, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Builds the base interference graph: webs that are simultaneously
    /// live interfere, and a definition interferes with everything live
    /// after it.
    pub fn from_liveness(
        _program: &Program,
        cfg: &Cfg,
        webs: &Webs,
        live: &WebLiveness,
    ) -> InterferenceGraph {
        let mut g = InterferenceGraph::new(webs.len());
        let _ = live.words();
        for pc in cfg.procedure().range.clone() {
            let set: Vec<WebId> = live.live_after(pc).collect();
            for (i, &a) in set.iter().enumerate() {
                for &b in &set[i + 1..] {
                    g.add_edge(a, b);
                }
            }
            if let Some(d) = webs.def_web(pc) {
                for &b in &set {
                    g.add_edge(d, b);
                }
            }
        }
        g
    }
}

/// Groups of coalesced webs plus colouring.
///
/// `color_groups` assigns every group a register from the palette of its
/// class (or the fixed member's register), or returns `None` if the graph
/// is uncolourable with the current constraints.
#[allow(clippy::needless_range_loop)] // parallel per-web arrays
pub fn color_groups(
    webs: &Webs,
    group_of: &[usize],
    n_groups: usize,
    graph_groups: &InterferenceGraph,
    palette_int: &[Reg],
    palette_fp: &[Reg],
) -> Option<Vec<Reg>> {
    // Determine per-group class, precolour and bias. Bias keeps every
    // web in its original register when legal — the pass must not
    // destroy the reuse the original allocation already had (merged
    // groups are biased toward the *producer*'s register, making the
    // merged correlation a same-register reuse).
    let mut class = vec![RegClass::Int; n_groups];
    let mut precolor: Vec<Option<Reg>> = vec![None; n_groups];
    let mut bias: Vec<Vec<Reg>> = vec![Vec::new(); n_groups];
    for w in 0..webs.len() {
        let g = group_of[w];
        class[g] = webs.reg(w).class();
        if webs.is_fixed(w) {
            // Conflicting precolours must have been filtered by the pass.
            precolor[g] = Some(webs.reg(w));
        }
        if !bias[g].contains(&webs.reg(w)) {
            bias[g].push(webs.reg(w));
        }
    }

    let palette = |c: RegClass| -> &[Reg] {
        match c {
            RegClass::Int => palette_int,
            RegClass::Fp => palette_fp,
        }
    };

    // Simplify with Briggs-style optimism.
    let mut removed = vec![false; n_groups];
    let mut stack = Vec::new();
    let free: Vec<usize> = (0..n_groups).filter(|&g| precolor[g].is_none()).collect();
    let mut remaining: usize = free.len();
    while remaining > 0 {
        let k_of = |g: usize| palette(class[g]).len();
        let degree = |g: usize, removed: &[bool]| {
            graph_groups.neighbors(g).filter(|&n| !removed[n] && class[n] == class[g]).count()
        };
        let pick = free
            .iter()
            .copied()
            .filter(|&g| !removed[g])
            .find(|&g| degree(g, &removed) < k_of(g))
            .or_else(|| {
                // Optimistic push of the max-degree node.
                free.iter().copied().filter(|&g| !removed[g]).max_by_key(|&g| degree(g, &removed))
            });
        let g = pick?;
        removed[g] = true;
        stack.push(g);
        remaining -= 1;
    }

    // Select, preferring each group's original registers.
    let mut color: Vec<Option<Reg>> = precolor.clone();
    while let Some(g) = stack.pop() {
        let mut used: Vec<Reg> = Vec::new();
        for n in graph_groups.neighbors(g) {
            if let Some(c) = color[n] {
                used.push(c);
            }
        }
        let pal = palette(class[g]);
        let c = bias[g]
            .iter()
            .filter(|r| pal.contains(r))
            .chain(pal.iter())
            .find(|r| !used.contains(r))?;
        color[g] = Some(*c);
    }
    Some(color.into_iter().map(|c| c.expect("every group coloured")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::analysis::abi;
    use rvp_isa::ProgramBuilder;

    fn setup(p: &Program) -> (Cfg, Webs, WebLiveness, InterferenceGraph) {
        let cfg = Cfg::build(p, &p.procedures()[0]);
        let webs = Webs::build(p, &cfg);
        let live = WebLiveness::compute(p, &cfg, &webs);
        let g = InterferenceGraph::from_liveness(p, &cfg, &webs, &live);
        (cfg, webs, live, g)
    }

    #[test]
    fn overlapping_webs_interfere() {
        let (a, b) = (Reg::int(1), Reg::int(2));
        let mut pb = ProgramBuilder::new();
        pb.li(a, 1); // 0
        pb.li(b, 2); // 1
        pb.add(a, a, b); // 2: both live before here
        pb.st(a, abi::SP, -8);
        pb.halt();
        let p = pb.build().unwrap();
        let (_, webs, live, g) = setup(&p);
        let wa = webs.def_web(0).unwrap();
        let wb = webs.def_web(1).unwrap();
        assert!(live.is_live_after(1, wa));
        assert!(g.interferes(wa, wb));
    }

    #[test]
    fn disjoint_webs_do_not_interfere() {
        let (a, b) = (Reg::int(1), Reg::int(2));
        let mut pb = ProgramBuilder::new();
        pb.li(a, 1);
        pb.st(a, abi::SP, -8); // a dies
        pb.li(b, 2);
        pb.st(b, abi::SP, -16);
        pb.halt();
        let p = pb.build().unwrap();
        let (_, webs, _, g) = setup(&p);
        let wa = webs.def_web(0).unwrap();
        let wb = webs.def_web(2).unwrap();
        assert!(!g.interferes(wa, wb));
    }

    #[test]
    fn coloring_is_biased_toward_original_registers() {
        let (a, b) = (Reg::int(1), Reg::int(2));
        let mut pb = ProgramBuilder::new();
        pb.li(a, 1);
        pb.st(a, abi::SP, -8);
        pb.li(b, 2);
        pb.st(b, abi::SP, -16);
        pb.halt();
        let p = pb.build().unwrap();
        let (_, webs, _, g) = setup(&p);
        let group_of: Vec<usize> = (0..webs.len()).collect();
        let pal_int: Vec<Reg> = rvp_isa::analysis::allocatable(RegClass::Int);
        let pal_fp: Vec<Reg> = rvp_isa::analysis::allocatable(RegClass::Fp);
        let colors = color_groups(&webs, &group_of, webs.len(), &g, &pal_int, &pal_fp).unwrap();
        // Without reuse constraints, webs keep their original registers —
        // the pass must not disturb reuse the allocation already has.
        let wa = webs.def_web(0).unwrap();
        let wb = webs.def_web(2).unwrap();
        assert_eq!(colors[group_of[wa]], a);
        assert_eq!(colors[group_of[wb]], b);
    }

    #[test]
    fn fixed_webs_keep_their_register() {
        let s0 = Reg::int(9); // callee-saved -> fixed
        let mut pb = ProgramBuilder::new();
        pb.li(s0, 1);
        pb.st(s0, abi::SP, -8);
        pb.halt();
        let p = pb.build().unwrap();
        let (_, webs, _, g) = setup(&p);
        let group_of: Vec<usize> = (0..webs.len()).collect();
        let pal_int: Vec<Reg> = rvp_isa::analysis::allocatable(RegClass::Int);
        let pal_fp: Vec<Reg> = rvp_isa::analysis::allocatable(RegClass::Fp);
        let colors = color_groups(&webs, &group_of, webs.len(), &g, &pal_int, &pal_fp).unwrap();
        let w = webs.def_web(0).unwrap();
        assert_eq!(colors[group_of[w]], s0);
    }

    #[test]
    fn uncolorable_clique_fails() {
        // Build a fake graph: 3 mutually-interfering webs, palette of 2.
        let (a, b) = (Reg::int(1), Reg::int(2));
        let c = Reg::int(3);
        let mut pb = ProgramBuilder::new();
        pb.li(a, 1);
        pb.li(b, 2);
        pb.li(c, 3);
        pb.add(a, a, b);
        pb.add(a, a, c);
        pb.st(a, abi::SP, -8);
        pb.halt();
        let p = pb.build().unwrap();
        let (_, webs, _, g) = setup(&p);
        let group_of: Vec<usize> = (0..webs.len()).collect();
        let tiny = [Reg::int(1), Reg::int(2)];
        let pal_fp: Vec<Reg> = rvp_isa::analysis::allocatable(RegClass::Fp);
        assert!(color_groups(&webs, &group_of, webs.len(), &g, &tiny, &pal_fp).is_none());
    }
}
