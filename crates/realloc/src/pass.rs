//! The profile-guided reallocation pass: reuse merging, last-value-reuse
//! interference, abandonment heuristics and program rewriting.

use std::collections::HashMap;

use rvp_isa::analysis::{abi, allocatable};
use rvp_isa::cfg::Cfg;
use rvp_isa::{Procedure, Program, Reg, RegClass, RegRole};
use rvp_profile::{PlanScope, Profile};

use crate::graph::{color_groups, InterferenceGraph, WebLiveness};
use crate::webs::{WebId, Webs};

/// Options controlling the reallocation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReallocOptions {
    /// Profile threshold for reuse candidates (the paper uses 0.80).
    pub threshold: f64,
    /// Which instructions are candidates.
    pub scope: PlanScope,
    /// Apply dead-register reuse merging.
    pub use_dead: bool,
    /// Apply last-value-reuse exclusive registers.
    pub use_lv: bool,
}

impl Default for ReallocOptions {
    fn default() -> ReallocOptions {
        ReallocOptions { threshold: 0.8, scope: PlanScope::AllInsts, use_dead: true, use_lv: true }
    }
}

/// Result of [`reallocate`].
#[derive(Debug, Clone)]
pub struct ReallocOutcome {
    /// The rewritten program (identical control flow and semantics, new
    /// register assignment).
    pub program: Program,
    /// Dead-register reuse candidates from the profile.
    pub dead_attempted: usize,
    /// ... that survived legality checks and colouring.
    pub dead_applied: usize,
    /// Last-value reuse candidates from the profile.
    pub lv_attempted: usize,
    /// ... that survived.
    pub lv_applied: usize,
}

#[derive(Debug, Clone, Copy)]
struct DeadReuse {
    consumer: WebId,
    producer: WebId,
    crit: u64,
}

#[derive(Debug, Clone, Copy)]
struct LvReuse {
    pc: usize,
    web: WebId,
    /// Loop-nesting depth of the instruction (deeper = keep longer).
    depth: usize,
    crit: u64,
}

/// Runs the paper's register-reallocation model over every procedure of
/// `program`, guided by `profile` (collected on the train input).
pub fn reallocate(program: &Program, profile: &Profile, opts: &ReallocOptions) -> ReallocOutcome {
    let mut outcome = ReallocOutcome {
        program: program.clone(),
        dead_attempted: 0,
        dead_applied: 0,
        lv_attempted: 0,
        lv_applied: 0,
    };
    let lists = profile.reuse_lists(program, opts.threshold, opts.scope);
    let mut rewrites: HashMap<usize, (Option<Reg>, HashMap<usize, Reg>)> = HashMap::new();
    // ^ per-pc: (dst replacement, per-register source replacement)

    for proc in program.procedures() {
        let (applied, dead_at, dead_ap, lv_at, lv_ap) =
            reallocate_proc(program, profile, opts, &proc, &lists);
        outcome.dead_attempted += dead_at;
        outcome.dead_applied += dead_ap;
        outcome.lv_attempted += lv_at;
        outcome.lv_applied += lv_ap;
        for (pc, rw) in applied {
            rewrites.insert(pc, rw);
        }
    }

    outcome.program = program.map_insts(|pc, inst| {
        let mut inst = inst.clone();
        if let Some((dst, srcs)) = rewrites.get(&pc) {
            inst.map_regs(|r, role| match role {
                RegRole::Dst => dst.unwrap_or(r),
                RegRole::Src => srcs.get(&r.index()).copied().unwrap_or(r),
            });
        }
        inst
    });
    outcome
}

type Rewrites = Vec<(usize, (Option<Reg>, HashMap<usize, Reg>))>;

fn reallocate_proc(
    program: &Program,
    profile: &Profile,
    opts: &ReallocOptions,
    proc: &Procedure,
    lists: &rvp_profile::ReuseLists,
) -> (Rewrites, usize, usize, usize, usize) {
    let cfg = Cfg::build(program, proc);
    let mut webs = Webs::build(program, &cfg);
    if webs.is_empty() {
        return (Vec::new(), 0, 0, 0, 0);
    }
    let live = WebLiveness::compute(program, &cfg, &webs);
    // Values live across a call survive only because the callee happens
    // not to write their register; they must keep it.
    for pc in proc.range.clone() {
        if program.insts()[pc].is_call() {
            for w in live.live_after(pc).collect::<Vec<_>>() {
                webs.pin(w);
            }
        }
    }
    let base = InterferenceGraph::from_liveness(program, &cfg, &webs, &live);
    let loops = cfg.loops();
    let depths = cfg.loop_depths();

    // A procedure may only be recoloured within the registers it already
    // writes: growing its clobber set could destroy values a caller
    // keeps live across calls to it (callee-clobber summaries, in
    // compiler terms).
    let mut written = rvp_isa::analysis::RegSet::new();
    for pc in proc.range.clone() {
        if let Some(d) = program.insts()[pc].dst() {
            written.insert(d);
        }
    }
    let palette_int: Vec<Reg> =
        palette(RegClass::Int).into_iter().filter(|r| written.contains(*r)).collect();
    let palette_fp: Vec<Reg> =
        palette(RegClass::Fp).into_iter().filter(|r| written.contains(*r)).collect();

    // --- Collect candidates within this procedure. ---
    let mut dead: Vec<DeadReuse> = Vec::new();
    let mut dead_attempted = 0;
    if opts.use_dead {
        for &(pc, r) in &lists.dead {
            if !proc.range.contains(&pc) {
                continue;
            }
            dead_attempted += 1;
            let Some(consumer) = webs.def_web(pc) else { continue };
            let Some(ppc) = profile.primary_producer(pc, r) else { continue };
            if !proc.range.contains(&ppc) {
                continue; // cross-procedure reuse is not supported
            }
            let Some(producer) = webs.def_web(ppc) else { continue };
            if producer == consumer {
                continue; // already share a register
            }
            if webs.reg(producer) != r {
                continue; // profile and webs disagree (stale producer)
            }
            if webs.reg(consumer).class() != webs.reg(producer).class() {
                continue;
            }
            // "The live ranges already conflict in the interference
            // graph" -> illegal.
            if base.interferes(consumer, producer) {
                continue;
            }
            if webs.is_fixed(consumer) {
                continue; // cannot move an ABI-pinned destination
            }
            if webs.is_fixed(producer) {
                // Joining a fixed web is only legal if its register is in
                // the volatile palette (the paper made a handful of such
                // exceptions by hand; we allow exactly the legal ones).
                let pr = webs.reg(producer);
                let pal = if pr.class() == RegClass::Int { &palette_int } else { &palette_fp };
                if !pal.contains(&pr) {
                    continue;
                }
            }
            dead.push(DeadReuse { consumer, producer, crit: profile.criticality(pc) });
        }
    }

    let mut lv: Vec<LvReuse> = Vec::new();
    let mut lv_attempted = 0;
    if opts.use_lv {
        for &pc in &lists.last_value {
            if !proc.range.contains(&pc) {
                continue;
            }
            lv_attempted += 1;
            let Some(web) = webs.def_web(pc) else { continue };
            if webs.is_fixed(web) {
                continue;
            }
            // "Any instruction that is not in a loop within the procedure
            // is abandoned."
            let Some(l) = loops.iter().find(|l| l.contains(cfg.block_of(pc))) else {
                continue;
            };
            // If the web has another definition inside the loop, the
            // last value cannot survive an iteration.
            let other_def_in_loop =
                webs.def_pcs(web).iter().any(|&d| d != pc && l.contains(cfg.block_of(d)));
            if other_def_in_loop {
                continue;
            }
            let depth = depths[cfg.block_of(pc)];
            lv.push(LvReuse { pc, web, depth, crit: profile.criticality(pc) });
        }
    }

    // Keep merges pairwise: chaining three or more webs into one
    // register makes each prediction's value depend on a same-iteration
    // producer, which is worthless at run time. Greedily keep the most
    // critical pair per web.
    dead.sort_by_key(|c| std::cmp::Reverse(c.crit));
    let mut grouped = vec![false; webs.len()];
    dead.retain(|c| {
        if grouped[c.consumer] || grouped[c.producer] {
            return false;
        }
        grouped[c.consumer] = true;
        grouped[c.producer] = true;
        true
    });

    // Constraint priority (paper Section 7.3, inverted into greedy
    // form): register reuses are kept in preference to LVR; within LVR,
    // inner loops and critical instructions are kept first. Constraints
    // are admitted one at a time, skipping any that make the graph
    // uncolourable — equivalent to the paper's "remove until colouring
    // succeeds", but it never throws away an innocent candidate.
    dead.sort_by_key(|c| std::cmp::Reverse(c.crit));
    lv.sort_by_key(|c| std::cmp::Reverse((c.depth, c.crit)));

    let mut kept_dead: Vec<DeadReuse> = Vec::new();
    let mut kept_lv: Vec<LvReuse> = Vec::new();
    let mut colors = match try_color(
        &webs,
        &base,
        &cfg,
        &loops,
        &kept_dead,
        &kept_lv,
        &palette_int,
        &palette_fp,
    ) {
        Some(c) => c,
        // The unconstrained graph should always colour (the original
        // assignment is a witness); if the conservative analyses say
        // otherwise, leave the procedure untouched.
        None => return (Vec::new(), dead_attempted, 0, lv_attempted, 0),
    };
    for c in dead {
        kept_dead.push(c);
        match try_color(&webs, &base, &cfg, &loops, &kept_dead, &kept_lv, &palette_int, &palette_fp)
        {
            Some(cols) => colors = cols,
            None => {
                kept_dead.pop();
            }
        }
    }
    for c in lv {
        kept_lv.push(c);
        match try_color(&webs, &base, &cfg, &loops, &kept_dead, &kept_lv, &palette_int, &palette_fp)
        {
            Some(cols) => colors = cols,
            None => {
                kept_lv.pop();
            }
        }
    }
    let (dead, lv) = (kept_dead, kept_lv);

    // --- Emit rewrites. ---
    let (group_of, _) = build_groups(&webs, &dead);
    let mut rewrites: Rewrites = Vec::new();
    for pc in proc.range.clone() {
        let dst = webs.def_web(pc).map(|w| colors[group_of[w]]);
        let mut srcs = HashMap::new();
        for (upc, r, w) in webs.uses() {
            if upc == pc {
                srcs.insert(r.index(), colors[group_of[w]]);
            }
        }
        if dst.is_some() || !srcs.is_empty() {
            rewrites.push((pc, (dst, srcs)));
        }
    }
    (rewrites, dead_attempted, dead.len(), lv_attempted, lv.len())
}

/// Volatile (caller-saved), non-reserved registers of a class — the set
/// freely assignable without save/restore obligations.
fn palette(class: RegClass) -> Vec<Reg> {
    let caller = abi::caller_saved();
    allocatable(class).into_iter().filter(|r| caller.contains(*r)).collect()
}

/// Coalesces the dead-reuse pairs into groups via union-find.
fn build_groups(webs: &Webs, dead: &[DeadReuse]) -> (Vec<usize>, usize) {
    let n = webs.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for d in dead {
        let (a, b) = (find(&mut parent, d.consumer), find(&mut parent, d.producer));
        if a != b {
            parent[b] = a;
        }
    }
    let mut group_of = vec![usize::MAX; n];
    let mut count = 0;
    for w in 0..n {
        let r = find(&mut parent, w);
        if group_of[r] == usize::MAX {
            group_of[r] = count;
            count += 1;
        }
        group_of[w] = group_of[r];
    }
    (group_of, count)
}

#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // parallel per-web arrays
fn try_color(
    webs: &Webs,
    base: &InterferenceGraph,
    cfg: &Cfg,
    loops: &[rvp_isa::cfg::Loop],
    dead: &[DeadReuse],
    lv: &[LvReuse],
    palette_int: &[Reg],
    palette_fp: &[Reg],
) -> Option<Vec<Reg>> {
    let (group_of, n_groups) = build_groups(webs, dead);

    // Two fixed webs with different registers in one group -> illegal
    // merge set; report failure so the caller abandons a candidate.
    let mut fixed_color: Vec<Option<Reg>> = vec![None; n_groups];
    for w in 0..webs.len() {
        if webs.is_fixed(w) {
            let g = group_of[w];
            match fixed_color[g] {
                None => fixed_color[g] = Some(webs.reg(w)),
                Some(r) if r == webs.reg(w) => {}
                Some(_) => return None,
            }
        }
    }

    // Project the base interference onto groups; a merge whose members
    // interfere makes the group self-conflicting -> fail.
    let mut g = InterferenceGraph::new(n_groups);
    for a in 0..webs.len() {
        for b in base.neighbors(a) {
            if b <= a {
                continue;
            }
            if group_of[a] == group_of[b] {
                return None;
            }
            g.add_edge(group_of[a], group_of[b]);
        }
    }

    // LVR: the web interferes with every web defined inside its
    // innermost loop.
    for c in lv {
        let l = loops
            .iter()
            .find(|l| l.contains(cfg.block_of(c.pc)))
            .expect("lv candidates are in loops");
        for &block in &l.body {
            for pc in cfg.blocks()[block].range.clone() {
                if pc == c.pc {
                    continue;
                }
                if let Some(w) = webs.def_web(pc) {
                    if group_of[w] == group_of[c.web] {
                        // Shares a colour with another in-loop def: the
                        // paper abandons such LVRs; signal failure.
                        return None;
                    }
                    g.add_edge(group_of[c.web], group_of[w]);
                }
            }
        }
    }

    color_groups(webs, &group_of, n_groups, &g, palette_int, palette_fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_emu::Emulator;
    use rvp_isa::ProgramBuilder;
    use rvp_profile::ProfileConfig;

    /// The dead-register correlation fixture from the profiler tests:
    /// `ld w` (pc 5) reloads the value the dead register `d` (r5) holds,
    /// produced by `ld d` (pc 3).
    fn correlated_program() -> Program {
        let (p, q, d, w, v, n) =
            (Reg::int(1), Reg::int(2), Reg::int(5), Reg::int(3), Reg::int(4), Reg::int(6));
        let values: Vec<u64> = (0..64u64).map(|i| i * 17 + 3).collect();
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &values);
        b.data(0x3000, &[9]);
        b.li(p, 0x1000);
        b.li(q, 0x3000);
        b.li(n, 64);
        b.label("loop");
        b.ld(d, p, 0); // 3
        b.st(d, p, 0x1000); // 4
        b.ld(w, p, 0x1000); // 5
        b.ld(v, q, 0); // 6
        b.addi(p, p, 8);
        b.subi(n, n, 1);
        b.bnez(n, "loop");
        b.halt();
        b.build().unwrap()
    }

    fn final_state(p: &Program) -> (u64, Vec<u64>) {
        let mut emu = Emulator::new(p);
        while emu.step().unwrap().is_some() {}
        let mem: Vec<u64> = (0..64).map(|i| emu.memory().read_u64(0x2000 + 8 * i)).collect();
        (emu.committed(), mem)
    }

    #[test]
    fn semantics_are_preserved() {
        let prog = correlated_program();
        let profile = Profile::collect(&prog, &ProfileConfig::default()).unwrap();
        let out = reallocate(&prog, &profile, &ReallocOptions::default());
        let (n0, m0) = final_state(&prog);
        let (n1, m1) = final_state(&out.program);
        assert_eq!(n0, n1);
        assert_eq!(m0, m1);
    }

    #[test]
    fn dead_reuse_becomes_same_register() {
        let prog = correlated_program();
        let profile = Profile::collect(&prog, &ProfileConfig::default()).unwrap();
        let out = reallocate(&prog, &profile, &ReallocOptions::default());
        assert!(out.dead_attempted >= 1);
        assert!(out.dead_applied >= 1, "dead reuse not applied: {out:?}");
        // After reallocation, `ld w` (pc 5) and `ld d` (pc 3) share a
        // destination register.
        let d_dst = out.program.insts()[3].dst().unwrap();
        let w_dst = out.program.insts()[5].dst().unwrap();
        assert_eq!(d_dst, w_dst);
        // And the profiler now sees same-register reuse at pc 5.
        let prof2 = Profile::collect(&out.program, &ProfileConfig::default()).unwrap();
        assert!(prof2.same_rate(5) > 0.9, "rate = {}", prof2.same_rate(5));
    }

    #[test]
    fn lv_reuse_gets_exclusive_register() {
        // A loop where `ld v` has pure last-value reuse but its register
        // is overwritten by an unrelated def each iteration.
        let (q, v, t, n) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new();
        b.data(0x3000, &[9]);
        b.li(q, 0x3000);
        b.li(n, 64);
        // A scratch register written once in the prologue: it is in the
        // procedure's write set, so the allocator may hand it to the
        // last-value reuse as an exclusive register.
        b.li(Reg::int(5), 0);
        b.label("loop");
        b.ld(v, q, 0); // 3: always 9 -> lv reuse
        b.st(v, q, 8);
        b.li(v, 0); // 5: kills same-register reuse of pc 3
        b.st(v, q, 16);
        b.mov(t, q);
        b.subi(n, n, 1);
        b.bnez(n, "loop");
        b.halt();
        let prog = b.build().unwrap();
        let profile = Profile::collect(&prog, &ProfileConfig::default()).unwrap();
        // Before: no same-register reuse at pc 2.
        assert!(profile.same_rate(3) < 0.1);
        assert!(profile.lv_rate(3) > 0.9);
        let out = reallocate(&prog, &profile, &ReallocOptions::default());
        assert!(out.lv_applied >= 1, "{out:?}");
        let prof2 = Profile::collect(&out.program, &ProfileConfig::default()).unwrap();
        assert!(prof2.same_rate(3) > 0.9, "rate = {}", prof2.same_rate(3));
        // Semantics preserved.
        let mut e0 = Emulator::new(&prog);
        while e0.step().unwrap().is_some() {}
        let mut e1 = Emulator::new(&out.program);
        while e1.step().unwrap().is_some() {}
        assert_eq!(e0.memory().read_u64(0x3008), e1.memory().read_u64(0x3008));
        assert_eq!(e0.committed(), e1.committed());
    }

    #[test]
    fn options_disable_passes() {
        let prog = correlated_program();
        let profile = Profile::collect(&prog, &ProfileConfig::default()).unwrap();
        let out = reallocate(
            &prog,
            &profile,
            &ReallocOptions { use_dead: false, use_lv: false, ..ReallocOptions::default() },
        );
        assert_eq!(out.dead_attempted, 0);
        assert_eq!(out.lv_attempted, 0);
    }

    #[test]
    fn values_live_across_calls_keep_their_registers() {
        // Regression test: `main` holds a volatile register (r1) live
        // across a call that happens not to clobber it, and the callee
        // has a recolourable scratch web. The pass must neither move the
        // caller's live value nor let the callee recolour into r1.
        use rvp_isa::analysis::abi;
        let (base, x, a0) = (Reg::int(1), Reg::int(27), Reg::int(16));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &(0..64u64).map(|i| i + 1).collect::<Vec<_>>());
        b.proc("main");
        b.li(base, 0x1000); // r1 live across the call below
        b.li(Reg::int(4), 48);
        b.label("loop");
        b.mov(a0, base);
        b.call("reader");
        b.st(Reg::int(0), base, 0x2000);
        b.ld(Reg::int(2), base, 0x2000); // dead-reg candidates appear here
        b.addi(base, base, 8);
        b.subi(Reg::int(4), Reg::int(4), 1);
        b.bnez(Reg::int(4), "loop");
        b.halt();
        b.proc("reader");
        b.ld(x, a0, 0); // callee scratch: recolourable web
        b.add(Reg::int(0), x, x);
        b.ret(abi::RA);
        let prog = b.build().unwrap();
        let profile =
            Profile::collect(&prog, &ProfileConfig { max_insts: 100_000, min_execs: 4 }).unwrap();
        let opts = ReallocOptions { threshold: 0.5, ..ReallocOptions::default() };
        let out = reallocate(&prog, &profile, &opts);
        // Semantics: identical final memory.
        let mut e0 = Emulator::new(&prog);
        while e0.step().unwrap().is_some() {}
        let mut e1 = Emulator::new(&out.program);
        while e1.step().unwrap().is_some() {}
        for i in 0..64 {
            let a = 0x3000 + 8 * i;
            assert_eq!(e0.memory().read_u64(a), e1.memory().read_u64(a));
        }
        // The caller's call-crossing register was not moved.
        assert_eq!(out.program.insts()[0].dst(), Some(base));
        // The callee never writes a register it did not originally write.
        let callee = &out.program.procedures()[1];
        for pc in callee.range.clone() {
            if let Some(d) = out.program.insts()[pc].dst() {
                assert!([x, Reg::int(0)].contains(&d) || d == abi::RA, "callee now writes {d}");
            }
        }
    }

    #[test]
    fn palette_is_volatile_only() {
        let ints = palette(RegClass::Int);
        assert!(!ints.contains(&Reg::int(9))); // callee-saved
        assert!(!ints.contains(&abi::SP));
        assert!(ints.contains(&Reg::int(1)));
        let fps = palette(RegClass::Fp);
        assert!(!fps.contains(&Reg::fp(2))); // callee-saved
        assert!(fps.contains(&Reg::fp(10)));
    }
}
