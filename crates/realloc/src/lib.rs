//! Profile-guided register reallocation (Section 7.3 of the paper).
//!
//! The paper's idealized results assume the compiler can expose every
//! profiled register-reuse opportunity. This crate implements the
//! *realistic* model used for Figure 7: classic Chaitin-style register
//! allocation over du-chain webs, extended with the paper's two
//! profile-guided constraints:
//!
//! * **dead-register reuse** — merge the live range (web) of an
//!   instruction's destination with the web of the *primary producer* of
//!   the correlated value, so both end up in the same architectural
//!   register and the correlation becomes same-register reuse;
//! * **last-value reuse** — give an instruction's destination a register
//!   that no other instruction in its innermost loop writes, by adding
//!   interference edges against every web defined in that loop.
//!
//! When the graph cannot be coloured, reuse constraints are abandoned in
//! the paper's priority order: last-value reuses before register reuses,
//! outer-loop (and low-criticality) candidates first, guided by the
//! profiler's critical-path weights.
//!
//! Webs tied to the calling convention (argument registers reaching
//! calls, return values, callee-saved registers, live-in values) are
//! *fixed*: they keep their original register and constrain their
//! neighbours, mirroring the paper's "all non-volatile registers live at
//! entrance and exit / each call uses all argument registers" model.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//! use rvp_profile::{Profile, ProfileConfig, PlanScope};
//! use rvp_realloc::{reallocate, ReallocOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let (p, d, w, n) = (Reg::int(1), Reg::int(5), Reg::int(3), Reg::int(6));
//! # let mut b = ProgramBuilder::new();
//! # b.data(0x1000, &(0..64u64).map(|i| i * 3 + 1).collect::<Vec<_>>());
//! # b.li(p, 0x1000).li(n, 64);
//! # b.label("loop");
//! # b.ld(d, p, 0);
//! # b.st(d, p, 0x1000);
//! # b.ld(w, p, 0x1000);
//! # b.addi(p, p, 8).subi(n, n, 1).bnez(n, "loop").halt();
//! # let program = b.build()?;
//! let profile = Profile::collect(&program, &ProfileConfig::default())?;
//! let outcome = reallocate(&program, &profile, &ReallocOptions::default());
//! // The transformed program computes the same results with more
//! // same-register value reuse.
//! assert_eq!(outcome.program.len(), program.len());
//! # Ok(())
//! # }
//! ```

mod graph;
mod pass;
mod webs;

pub use graph::{InterferenceGraph, WebLiveness};
pub use pass::{reallocate, ReallocOptions, ReallocOutcome};
pub use webs::{WebId, Webs};
