//! Du-chain web construction via reaching definitions.

use std::collections::HashMap;

use rvp_isa::analysis::{abi, effective_uses};
use rvp_isa::cfg::Cfg;
use rvp_isa::{Kind, Program, Reg, NUM_REGS};

/// Identifier of a web within one procedure's [`Webs`].
pub type WebId = usize;

/// One definition site: an explicit register write, or the implicit
/// definition of a live-in value at procedure entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DefSite {
    /// Explicit destination write at this PC.
    Inst(usize),
    /// Implicit procedure-entry definition.
    Entry,
}

#[derive(Debug, Clone)]
struct DefInfo {
    site: DefSite,
    reg: Reg,
}

/// The du-chain webs of one procedure: maximal sets of definitions and
/// uses of a register that must share the same register after
/// reallocation.
#[derive(Debug, Clone)]
pub struct Webs {
    /// Number of webs.
    count: usize,
    /// Original register of each web.
    reg: Vec<Reg>,
    /// Whether the web is pinned to its original register.
    fixed: Vec<bool>,
    /// Explicit def PCs per web.
    def_pcs: Vec<Vec<usize>>,
    /// Use map: (pc, register index) -> web.
    uses: HashMap<(usize, usize), WebId>,
    /// Implicit (ABI-convention) uses: (pc, web). Not rewritten, but they
    /// extend live ranges.
    implicit_uses: Vec<(usize, WebId)>,
    /// Def map: pc -> web (for the instruction's destination).
    def_at: HashMap<usize, WebId>,
}

impl Webs {
    /// Builds the webs of `cfg`'s procedure.
    pub fn build(program: &Program, cfg: &Cfg) -> Webs {
        Builder::new(program, cfg).run()
    }

    /// Number of webs.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the procedure has no webs.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The original architectural register of a web.
    pub fn reg(&self, w: WebId) -> Reg {
        self.reg[w]
    }

    /// Whether the web must keep its original register (ABI-constrained).
    pub fn is_fixed(&self, w: WebId) -> bool {
        self.fixed[w]
    }

    /// Pins a web to its original register. The pass uses this for webs
    /// that are live across calls: such values survive only because the
    /// callee happens not to touch their particular register, so they
    /// must not be moved.
    pub fn pin(&mut self, w: WebId) {
        self.fixed[w] = true;
    }

    /// Explicit definition PCs of a web.
    pub fn def_pcs(&self, w: WebId) -> &[usize] {
        &self.def_pcs[w]
    }

    /// The web defined by the instruction at `pc` (its destination), if
    /// it writes a tracked register.
    pub fn def_web(&self, pc: usize) -> Option<WebId> {
        self.def_at.get(&pc).copied()
    }

    /// The web a use of register `r` at `pc` reads from, if tracked.
    pub fn use_web(&self, pc: usize, r: Reg) -> Option<WebId> {
        self.uses.get(&(pc, r.index())).copied()
    }

    /// All explicit uses as `(pc, register, web)` triples.
    pub fn uses(&self) -> impl Iterator<Item = (usize, Reg, WebId)> + '_ {
        self.uses.iter().map(|(&(pc, r), &w)| (pc, Reg::from_index(r), w))
    }

    /// Implicit ABI uses as `(pc, web)` pairs (extend live ranges, never
    /// rewritten).
    pub fn implicit_uses(&self) -> &[(usize, WebId)] {
        &self.implicit_uses
    }
}

struct Builder<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    defs: Vec<DefInfo>,
    parent: Vec<usize>,
    /// Def indices per register.
    defs_of_reg: Vec<Vec<usize>>,
    /// Recorded (pc, reg, def index) use attachments.
    use_records: Vec<(usize, usize, usize)>,
    /// Recorded implicit-use attachments: (pc, def index).
    implicit_records: Vec<(usize, usize)>,
    /// Webs (by representative def) containing an implicit use.
    implicit_use: Vec<bool>,
}

impl<'a> Builder<'a> {
    fn new(program: &'a Program, cfg: &'a Cfg) -> Builder<'a> {
        Builder {
            program,
            cfg,
            defs: Vec::new(),
            parent: Vec::new(),
            defs_of_reg: vec![Vec::new(); NUM_REGS],
            use_records: Vec::new(),
            implicit_records: Vec::new(),
            implicit_use: Vec::new(),
        }
    }

    fn tracked(r: Reg) -> bool {
        !r.is_zero() && !abi::reserved().contains(r)
    }

    fn add_def(&mut self, site: DefSite, reg: Reg) -> usize {
        let id = self.defs.len();
        self.defs.push(DefInfo { site, reg });
        self.parent.push(id);
        self.defs_of_reg[reg.index()].push(id);
        self.implicit_use.push(false);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
            let imp = self.implicit_use[ra] || self.implicit_use[rb];
            self.implicit_use[ra] = imp;
        }
        ra
    }

    #[allow(clippy::needless_range_loop)] // parallel def-site arrays
    fn run(mut self) -> Webs {
        let range = self.cfg.procedure().range.clone();

        // Entry defs for every tracked register (live-in values).
        let mut entry_def = [usize::MAX; NUM_REGS];
        for i in 0..NUM_REGS {
            let r = Reg::from_index(i);
            if Self::tracked(r) {
                entry_def[i] = self.add_def(DefSite::Entry, r);
            }
        }
        // Explicit defs.
        let mut inst_def = HashMap::new();
        for pc in range.clone() {
            if let Some(dst) = self.program.insts()[pc].dst() {
                if Self::tracked(dst) {
                    inst_def.insert(pc, self.add_def(DefSite::Inst(pc), dst));
                }
            }
        }

        // Reaching definitions (bitsets over def indices) at block level.
        let nd = self.defs.len();
        let words = nd.div_ceil(64);
        let blocks = self.cfg.blocks();
        let nb = blocks.len();
        let mut gen_b = vec![vec![0u64; words]; nb];
        let mut kill_b = vec![vec![0u64; words]; nb];
        for (b, block) in blocks.iter().enumerate() {
            for pc in block.range.clone() {
                if let Some(&d) = inst_def.get(&pc) {
                    let reg = self.defs[d].reg;
                    // Kill every other def of this register.
                    for &other in &self.defs_of_reg[reg.index()] {
                        if other != d {
                            kill_b[b][other / 64] |= 1 << (other % 64);
                            gen_b[b][other / 64] &= !(1 << (other % 64));
                        }
                    }
                    gen_b[b][d / 64] |= 1 << (d % 64);
                    kill_b[b][d / 64] &= !(1 << (d % 64));
                }
            }
        }
        let mut in_b = vec![vec![0u64; words]; nb];
        let mut out_b = vec![vec![0u64; words]; nb];
        // Entry block starts with the entry defs.
        let mut entry_set = vec![0u64; words];
        for &d in entry_def.iter().filter(|&&d| d != usize::MAX) {
            entry_set[d / 64] |= 1 << (d % 64);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut inn = if b == 0 { entry_set.clone() } else { vec![0u64; words] };
                for &p in &blocks[b].preds {
                    for w in 0..words {
                        inn[w] |= out_b[p][w];
                    }
                }
                let mut out = inn.clone();
                for w in 0..words {
                    out[w] = (out[w] & !kill_b[b][w]) | gen_b[b][w];
                }
                if inn != in_b[b] || out != out_b[b] {
                    in_b[b] = inn;
                    out_b[b] = out;
                    changed = true;
                }
            }
        }

        // Walk blocks, merging reaching defs at each use and recording
        // use attachments.
        for (b, block) in blocks.iter().enumerate() {
            let mut cur = in_b[b].clone();
            for pc in block.range.clone() {
                let inst = &self.program.insts()[pc];
                let explicit: Vec<Reg> = inst.srcs().into_iter().flatten().collect();
                let all_uses = effective_uses(inst);
                // Halt exits implicitly use the convention's exit-live set
                // (mirrors the liveness analysis).
                let halt_exit = matches!(inst.kind, Kind::Halt);
                let exit_uses = if halt_exit {
                    abi::callee_saved().union(abi::return_values())
                } else {
                    rvp_isa::analysis::RegSet::new()
                };
                for r in all_uses.union(exit_uses).iter() {
                    if !Self::tracked(r) {
                        continue;
                    }
                    let implicit = !explicit.contains(&r);
                    // Union all reaching defs of r.
                    let mut rep: Option<usize> = None;
                    for &d in &self.defs_of_reg[r.index()].clone() {
                        if cur[d / 64] & (1 << (d % 64)) != 0 {
                            rep = Some(match rep {
                                None => self.find(d),
                                Some(p) => self.union(p, d),
                            });
                        }
                    }
                    if let Some(rep) = rep {
                        if implicit {
                            self.implicit_use[rep] = true;
                            self.implicit_records.push((pc, rep));
                        } else {
                            self.use_records.push((pc, r.index(), rep));
                        }
                    }
                }
                // Apply the def.
                if let Some(&d) = inst_def.get(&pc) {
                    let reg = self.defs[d].reg;
                    for &other in &self.defs_of_reg[reg.index()] {
                        if other != d {
                            cur[other / 64] &= !(1 << (other % 64));
                        }
                    }
                    cur[d / 64] |= 1 << (d % 64);
                }
            }
        }

        // Canonicalize webs.
        let mut web_of_rep: HashMap<usize, WebId> = HashMap::new();
        let mut web_of_def = vec![0; nd];
        let mut reg = Vec::new();
        let mut fixed = Vec::new();
        let mut def_pcs: Vec<Vec<usize>> = Vec::new();
        for d in 0..nd {
            let rep = self.find(d);
            let w = *web_of_rep.entry(rep).or_insert_with(|| {
                reg.push(self.defs[rep].reg);
                fixed.push(false);
                def_pcs.push(Vec::new());
                reg.len() - 1
            });
            web_of_def[d] = w;
            if let DefSite::Inst(pc) = self.defs[d].site {
                def_pcs[w].push(pc);
            }
        }
        // A web is fixed if it contains an entry def, carries an implicit
        // (ABI) use, or lives in a callee-saved register.
        for d in 0..nd {
            let w = web_of_def[d];
            let rep = self.find(d);
            if matches!(self.defs[d].site, DefSite::Entry)
                || self.implicit_use[rep]
                || abi::callee_saved().contains(self.defs[d].reg)
            {
                fixed[w] = true;
            }
        }
        // Webs with entry defs but NO explicit defs and no uses are inert;
        // they stay fixed, which is harmless.

        let mut uses = HashMap::new();
        for &(pc, reg_idx, rep) in &self.use_records.clone() {
            let w = web_of_def[self.find(rep)];
            uses.insert((pc, reg_idx), w);
        }
        let mut implicit_uses = Vec::new();
        for &(pc, rep) in &self.implicit_records.clone() {
            implicit_uses.push((pc, web_of_def[self.find(rep)]));
        }
        let mut def_at = HashMap::new();
        for (pc, d) in inst_def {
            def_at.insert(pc, web_of_def[d]);
        }

        Webs { count: reg.len(), reg, fixed, def_pcs, uses, implicit_uses, def_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::ProgramBuilder;

    fn webs_of(p: &Program) -> (Cfg, Webs) {
        let cfg = Cfg::build(p, &p.procedures()[0]);
        let w = Webs::build(p, &cfg);
        (cfg, w)
    }

    #[test]
    fn disjoint_lifetimes_form_separate_webs() {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 1); // web A
        b.st(r, abi::SP, -8); // last use of A
        b.li(r, 2); // web B
        b.st(r, abi::SP, -16);
        b.halt();
        let p = b.build().unwrap();
        let (_, w) = webs_of(&p);
        let a = w.def_web(0).unwrap();
        let b_ = w.def_web(2).unwrap();
        assert_ne!(a, b_);
        assert_eq!(w.use_web(1, r), Some(a));
        assert_eq!(w.use_web(3, r), Some(b_));
        assert!(!w.is_fixed(a));
        assert!(!w.is_fixed(b_));
    }

    #[test]
    fn merging_at_joins() {
        // Two defs reaching a common use belong to one web.
        let (c, r) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(c, 1);
        b.beqz(c, "else");
        b.li(r, 10); // def 1
        b.br("join");
        b.label("else");
        b.li(r, 20); // def 2
        b.label("join");
        b.st(r, abi::SP, -8); // use sees both
        b.halt();
        let p = b.build().unwrap();
        let (_, w) = webs_of(&p);
        assert_eq!(w.def_web(2), w.def_web(4));
    }

    #[test]
    fn arg_registers_reaching_calls_are_fixed() {
        let a0 = Reg::int(16);
        let mut b = ProgramBuilder::new();
        b.proc("main");
        b.li(a0, 5); // feeds the call: fixed
        b.call("f");
        b.halt();
        b.proc("f");
        b.li(Reg::int(0), 1);
        b.ret(abi::RA);
        let p = b.build().unwrap();
        let procs = p.procedures();
        let cfg = Cfg::build(&p, &procs[0]);
        let w = Webs::build(&p, &cfg);
        let web = w.def_web(0).unwrap(); // the `li a0`
        assert!(w.is_fixed(web));
        assert_eq!(w.reg(web), a0);
    }

    #[test]
    fn scratch_arg_register_not_reaching_call_is_free() {
        let a0 = Reg::int(16);
        let mut b = ProgramBuilder::new();
        b.li(a0, 5);
        b.st(a0, abi::SP, -8);
        b.li(a0, 7); // second web; no call anywhere
        b.st(a0, abi::SP, -16);
        b.halt();
        let p = b.build().unwrap();
        let (_, w) = webs_of(&p);
        assert!(!w.is_fixed(w.def_web(0).unwrap()));
        assert!(!w.is_fixed(w.def_web(2).unwrap()));
    }

    #[test]
    fn callee_saved_webs_are_fixed() {
        let s0 = Reg::int(9);
        let mut b = ProgramBuilder::new();
        b.li(s0, 1);
        b.st(s0, abi::SP, -8);
        b.halt();
        let p = b.build().unwrap();
        let (_, w) = webs_of(&p);
        assert!(w.is_fixed(w.def_web(0).unwrap()));
    }

    #[test]
    fn return_value_reaching_ret_is_fixed() {
        let mut b = ProgramBuilder::new();
        b.proc("f");
        b.li(Reg::int(0), 42);
        b.ret(abi::RA);
        let p = b.build().unwrap();
        let procs = p.procedures();
        let cfg = Cfg::build(&p, &procs[0]);
        let w = Webs::build(&p, &cfg);
        assert!(w.is_fixed(w.def_web(0).unwrap()));
    }

    #[test]
    fn loop_carried_defs_share_a_web() {
        let (i, n) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(i, 0); // def outside
        b.li(n, 10);
        b.label("top");
        b.addi(i, i, 1); // def inside uses both defs' values
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.st(i, abi::SP, -8);
        b.halt();
        let p = b.build().unwrap();
        let (_, w) = webs_of(&p);
        // The use of i at pc 2 sees the entry li and the loop add: one web.
        assert_eq!(w.def_web(0), w.def_web(2));
    }
}
