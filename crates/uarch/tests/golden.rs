//! Golden timing tests: exact cycle counts for small programs, pinned so
//! that *any* change to the timing model's behaviour is visible in a
//! review. These are model pins, not correctness claims — when a
//! deliberate model change shifts them, update the constants in the same
//! commit that explains why.

use rvp_isa::{Program, ProgramBuilder, Reg};
use rvp_uarch::{PredictionPlan, Recovery, Scheme, Simulator, UarchConfig};

fn cycles(p: &Program, scheme: Scheme, recovery: Recovery) -> (u64, u64) {
    let s = Simulator::new(UarchConfig::table1(), scheme, recovery).run(p, 1 << 20).unwrap();
    (s.cycles, s.committed)
}

fn dependent_chain() -> Program {
    let (r, n) = (Reg::int(1), Reg::int(2));
    let mut b = ProgramBuilder::new();
    b.li(r, 0);
    b.li(n, 50);
    b.label("top");
    for _ in 0..8 {
        b.addi(r, r, 1);
    }
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    b.build().unwrap()
}

/// A loop whose pointer advance depends on loaded (constant) step
/// values: a carried load→add chain that register value prediction
/// breaks.
fn predictable_load_loop() -> Program {
    let (ptr, step, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[8; 64]);
    b.li(ptr, 0x1000);
    b.li(n, 100);
    b.label("top");
    b.ld(step, ptr, 0);
    b.add(ptr, ptr, step);
    b.and(ptr, ptr, 0x11f8);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    b.build().unwrap()
}

#[test]
fn golden_dependent_chain_baseline() {
    let p = dependent_chain();
    let (cycles, committed) = cycles(&p, Scheme::no_predict(), Recovery::Selective);
    assert_eq!(committed, 503);
    assert_eq!(cycles, 573, "timing model changed: dependent chain");
}

#[test]
fn golden_load_loop_baseline_vs_drvp() {
    let p = predictable_load_loop();
    let (base, committed) = cycles(&p, Scheme::no_predict(), Recovery::Selective);
    assert_eq!(committed, 503);
    let (drvp, _) = cycles(
        &p,
        Scheme::drvp(rvp_uarch::Scope::LoadsOnly, PredictionPlan::new()),
        Recovery::Selective,
    );
    assert_eq!(base, 1368, "timing model changed: load loop baseline");
    assert_eq!(drvp, 950, "timing model changed: load loop with dRVP");
    assert!(drvp < base);
}

#[test]
fn golden_recovery_cycle_counts() {
    // Static RVP on an always-mispredicting load distinguishes all three
    // recovery models.
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[1, 2]);
    b.li(ptr, 0x1000);
    b.li(n, 50);
    b.label("top");
    b.ld(v, ptr, 0); // pc 2: alternates
    b.add(Reg::int(4), v, 1);
    b.ld(Reg::int(5), ptr, 8);
    b.st(Reg::int(5), ptr, 0);
    b.st(v, ptr, 8);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let plan: PredictionPlan = [(2usize, rvp_uarch::ReuseKind::SameReg)].into_iter().collect();
    let refetch = cycles(&p, Scheme::srvp(plan.clone()), Recovery::Refetch).0;
    let reissue = cycles(&p, Scheme::srvp(plan.clone()), Recovery::Reissue).0;
    let selective = cycles(&p, Scheme::srvp(plan), Recovery::Selective).0;
    assert_eq!(
        (refetch, reissue, selective),
        (974, 484, 456),
        "timing model changed: recovery costs"
    );
    // Refetch pays a squash per mispredict; the others reissue cheaply.
    assert!(refetch > selective);
}
