//! Zero-allocation gate for the cycle loop.
//!
//! The hot-loop work (bounded ring queues, preallocated squash scratch,
//! the timing wheel's slot capacities) is only worth anything if it
//! *stays* allocation-free, so this test pins it: a counting allocator
//! wraps the system allocator, the same program runs under three
//! instruction budgets spanning well over 100k cycles of steady state,
//! and every run must perform exactly the same number of heap
//! allocations — i.e. all allocation happens during machine
//! construction, none per cycle, per squash or per validator pass.
//!
//! The workload is deliberately hostile: a value-mispredicting load
//! loop under refetch recovery, so every iteration exercises the
//! squash → rewind scratch hand-off, plus stores for the
//! memory-disambiguation queue.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rvp_isa::{Program, ProgramBuilder, Reg};
use rvp_uarch::{PredictionPlan, Recovery, Scheme, SharedSource, Simulator, UarchConfig};

/// Counts every allocator call (allocations and reallocations; frees
/// are irrelevant to the gate) on top of the system allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// When the gate regresses, store `before + <failing count>` here ahead
/// of a run to panic with a backtrace at the offending allocation.
static TRAP_AT: AtomicU64 = AtomicU64::new(u64::MAX);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let n = ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        if n == TRAP_AT.load(Ordering::Relaxed) {
            panic!("trapped alloc of {} bytes", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let n = ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        if n == TRAP_AT.load(Ordering::Relaxed) {
            panic!("trapped realloc {} -> {} bytes", layout.size(), new_size);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// An always-mispredicting load loop (the two loaded slots swap every
/// iteration) with stores and a long trip count.
fn hostile_loop(iterations: i64) -> Program {
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[1, 2]);
    b.li(ptr, 0x1000);
    b.li(n, iterations);
    b.label("top");
    b.ld(v, ptr, 0);
    b.add(Reg::int(4), v, 1);
    b.ld(Reg::int(5), ptr, 8);
    b.st(Reg::int(5), ptr, 0);
    b.st(v, ptr, 8);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    b.build().unwrap()
}

#[test]
fn steady_state_makes_no_heap_allocations() {
    let program = hostile_loop(100_000);
    let plan: PredictionPlan = [(2usize, rvp_uarch::ReuseKind::SameReg)].into_iter().collect();
    let trace = SharedSource::capture(&program, 1 << 20).unwrap();

    // (budget in committed insts, measured allocator calls, cycles)
    let mut runs = Vec::with_capacity(3);
    for budget in [1_000u64, 20_000, 80_000] {
        let mut sim =
            Simulator::new(UarchConfig::table1(), Scheme::srvp(plan.clone()), Recovery::Refetch);
        let mut source = SharedSource::new(trace.clone());
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let stats = sim.run_with_source(&program, &mut source, budget).unwrap();
        let calls = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        assert_eq!(stats.committed, budget, "workload too short for the gate");
        runs.push((budget, calls, stats.cycles));
    }

    // The measured window between the shortest and longest run must be a
    // real steady-state stretch, not a startup transient.
    let window = runs.last().unwrap().2 - runs[0].2;
    assert!(window >= 100_000, "gate window too small: {window} cycles");

    // Construction allocates; cycles must not: every run performs the
    // identical, budget-independent number of allocator calls.
    assert!(runs[0].1 > 0, "counting allocator is not engaged");
    assert_eq!(runs[0].1, runs[1].1, "allocation count grew with run length: {runs:?}");
    assert_eq!(runs[0].1, runs[2].1, "allocation count grew with run length: {runs:?}");
}
