//! Behavioural tests for the out-of-order pipeline, exercised through
//! the public `Simulator` API (they predate the module split of the
//! timing core and pin its architectural behaviour).

use rvp_isa::{Program, ProgramBuilder, Reg};
use rvp_uarch::{ObsConfig, PredictionPlan, Recovery, ReuseKind, Scheme, Scope, SimStats};
use rvp_uarch::{Simulator, UarchConfig};

fn counted_loop(iters: i64) -> Program {
    let r = Reg::int(1);
    let mut b = ProgramBuilder::new();
    b.li(r, iters);
    b.label("top");
    b.subi(r, r, 1);
    b.bnez(r, "top");
    b.halt();
    b.build().unwrap()
}

fn run(p: &Program, scheme: Scheme, rec: Recovery) -> SimStats {
    Simulator::new(UarchConfig::table1(), scheme, rec).run(p, 1_000_000).unwrap()
}

#[test]
fn commits_every_instruction_exactly_once() {
    let p = counted_loop(500);
    let s = run(&p, Scheme::no_predict(), Recovery::Selective);
    // li + 500*(sub+bne) + halt
    assert_eq!(s.committed, 1 + 1000 + 1);
    assert!(s.cycles > 0);
}

#[test]
fn dependent_chain_is_serialized() {
    // A loop of dependent adds (warm caches): IPC must be ~1 — each
    // add waits for the previous one on a 1-cycle ALU.
    let (r, n) = (Reg::int(1), Reg::int(2));
    let mut b = ProgramBuilder::new();
    b.li(r, 0);
    b.li(n, 200);
    b.label("top");
    for _ in 0..16 {
        b.addi(r, r, 1);
    }
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let s = run(&p, Scheme::no_predict(), Recovery::Selective);
    assert!(s.ipc() < 1.4, "ipc = {}", s.ipc());
    assert!(s.ipc() > 0.8, "ipc = {}", s.ipc());
}

#[test]
fn independent_ops_run_in_parallel() {
    // 6 independent chains in a loop: should sustain well over 2 IPC.
    let n = Reg::int(7);
    let mut b = ProgramBuilder::new();
    for i in 0..6u8 {
        b.li(Reg::int(i + 1), 0);
    }
    b.li(n, 200);
    b.label("top");
    for _ in 0..4 {
        for i in 0..6u8 {
            b.addi(Reg::int(i + 1), Reg::int(i + 1), 1);
        }
    }
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let s = run(&p, Scheme::no_predict(), Recovery::Selective);
    assert!(s.ipc() > 2.5, "ipc = {}", s.ipc());
}

#[test]
fn branch_mispredicts_cost_cycles() {
    // A data-dependent unpredictable branch pattern vs a steady loop.
    let steady = counted_loop(2000);
    let s1 = run(&steady, Scheme::no_predict(), Recovery::Selective);
    assert!(s1.branch.direction_accuracy() > 0.95, "accuracy = {}", s1.branch.direction_accuracy());
}

#[test]
fn value_prediction_breaks_dependence_chains() {
    // A pointer-chase-like loop where each iteration's load feeds a
    // long dependent computation, and the load always returns the
    // same value (perfect same-register reuse).
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[5]);
    b.li(ptr, 0x1000);
    b.li(n, 400);
    b.label("top");
    b.ld(v, ptr, 0);
    // Dependent chain off the loaded value.
    for _ in 0..4 {
        b.mul(v, v, 1);
    }
    b.st(v, ptr, 0); // stores 5 back; the load stays constant
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();

    let base = run(&p, Scheme::no_predict(), Recovery::Selective);
    let drvp = run(&p, Scheme::drvp(Scope::LoadsOnly, PredictionPlan::new()), Recovery::Selective);
    assert_eq!(base.committed, drvp.committed);
    assert!(drvp.predictions > 0, "no predictions made");
    assert!(drvp.accuracy() > 0.9, "accuracy = {}", drvp.accuracy());
    assert!(drvp.ipc() > base.ipc() * 1.02, "drvp {} vs base {}", drvp.ipc(), base.ipc());
}

#[test]
fn lvp_matches_on_constant_loads() {
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[9]);
    b.li(ptr, 0x1000);
    b.li(n, 300);
    b.label("top");
    b.ld(v, ptr, 0);
    b.mul(v, v, 2);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let s = run(&p, Scheme::lvp_loads(), Recovery::Selective);
    assert!(s.predictions > 200, "predictions = {}", s.predictions);
    assert!(s.accuracy() > 0.95);
}

#[test]
fn static_rvp_predicts_marked_loads_always() {
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[7]);
    b.li(ptr, 0x1000);
    b.li(n, 100);
    b.label("top");
    b.ld(v, ptr, 0); // pc 2
    b.add(Reg::int(4), v, 0);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();
    let s = run(&p, Scheme::srvp(plan), Recovery::Selective);
    assert_eq!(s.predictions, 100);
    // First iteration mispredicts (register held 0), then all hit.
    assert_eq!(s.correct_predictions, 99);
}

#[test]
fn mispredictions_recover_correctly_under_all_schemes() {
    // A load whose value alternates: confidence filters most
    // predictions, but static RVP predicts always, forcing recovery.
    let (ptr, v, n, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[1, 2]);
    b.li(ptr, 0x1000);
    b.li(n, 200);
    b.label("top");
    b.ld(v, ptr, 0); // pc 2: alternates 1, 2
    b.add(t, v, 10); // first use of the predicted value
    b.add(t, t, t);
    b.xor(Reg::int(5), t, 3);
    // Swap the two memory words so the next load differs.
    b.ld(Reg::int(6), ptr, 8);
    b.st(Reg::int(6), ptr, 0);
    b.st(v, ptr, 8);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();

    for rec in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
        let s = run(&p, Scheme::srvp(plan.clone()), rec);
        assert_eq!(s.committed, 2 + 200 * 9 + 1);
        assert_eq!(s.predictions, 200);
        // Value alternates every iteration: every prediction wrong.
        assert!(s.accuracy() < 0.05, "accuracy = {}", s.accuracy());
    }
    // All three recovered; refetch squashed, others reissued.
    let refetch = run(&p, Scheme::srvp(plan.clone()), Recovery::Refetch);
    assert!(refetch.squashes > 0);
    let selective = run(&p, Scheme::srvp(plan), Recovery::Selective);
    assert!(selective.reissued_insts > 0);
}

#[test]
fn no_prediction_schemes_agree_on_commit_count() {
    let p = counted_loop(123);
    let a = run(&p, Scheme::no_predict(), Recovery::Refetch);
    let b_ = run(&p, Scheme::no_predict(), Recovery::Reissue);
    let c = run(&p, Scheme::no_predict(), Recovery::Selective);
    assert_eq!(a.committed, b_.committed);
    assert_eq!(b_.committed, c.committed);
    // Without prediction the recovery scheme is irrelevant.
    assert_eq!(a.cycles, c.cycles);
}

#[test]
fn max_insts_caps_the_run() {
    let p = counted_loop(1_000_000);
    let s = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .run(&p, 5_000)
        .unwrap();
    assert_eq!(s.committed, 5_000);
}

#[test]
fn wide_machine_is_at_least_as_fast() {
    let mut b = ProgramBuilder::new();
    for i in 0..8u8 {
        b.li(Reg::int(i + 1), 0);
    }
    for _ in 0..100 {
        for i in 0..8u8 {
            b.addi(Reg::int(i + 1), Reg::int(i + 1), 1);
        }
    }
    b.halt();
    let p = b.build().unwrap();
    let narrow = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .run(&p, 1 << 20)
        .unwrap();
    let wide = Simulator::new(UarchConfig::wide16(), Scheme::no_predict(), Recovery::Selective)
        .run(&p, 1 << 20)
        .unwrap();
    assert!(wide.ipc() >= narrow.ipc() * 0.99);
}

#[test]
fn reissue_recovery_inflates_queue_occupancy() {
    // The paper's Figure 4 mechanism: reissue keeps speculative work
    // in the queues, selective holds only dependents.
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[5]);
    b.li(ptr, 0x1000);
    b.li(n, 400);
    b.label("top");
    b.ld(v, ptr, 0);
    for _ in 0..4 {
        b.mul(v, v, 1);
    }
    b.st(v, ptr, 0);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let scheme = || Scheme::drvp(Scope::LoadsOnly, PredictionPlan::new());
    let reissue = run(&p, scheme(), Recovery::Reissue);
    let selective = run(&p, scheme(), Recovery::Selective);
    assert!(reissue.predictions > 0);
    assert!(
        reissue.avg_iq_int_occupancy() > selective.avg_iq_int_occupancy(),
        "reissue {:.2} !> selective {:.2}",
        reissue.avg_iq_int_occupancy(),
        selective.avg_iq_int_occupancy()
    );
}

#[test]
fn read_port_limit_caps_nonload_predictions() {
    // Many simultaneously-predictable ALU ops: with 0 extra ports no
    // non-load prediction can happen; unlimited predicts plenty.
    let n = Reg::int(7);
    let mut b = ProgramBuilder::new();
    for i in 0..6u8 {
        b.li(Reg::int(i + 1), 5);
    }
    b.li(n, 400);
    b.label("top");
    for i in 0..6u8 {
        // Each rewrites its own constant: perfect same-register reuse.
        b.and(Reg::int(i + 1), Reg::int(i + 1), 7);
    }
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let run_ports = |ports: Option<usize>| {
        let cfg = UarchConfig { pred_ports: ports, ..UarchConfig::table1() };
        Simulator::new(
            cfg,
            Scheme::drvp(Scope::AllInsts, PredictionPlan::new()),
            Recovery::Selective,
        )
        .run(&p, 1 << 20)
        .unwrap()
    };
    let unlimited = run_ports(None);
    let zero = run_ports(Some(0));
    let one = run_ports(Some(1));
    assert_eq!(zero.predictions, 0);
    assert!(unlimited.predictions > one.predictions);
    assert!(one.predictions > 0);
    // Architectural behaviour is identical regardless.
    assert_eq!(zero.committed, unlimited.committed);
}

#[test]
fn stride_buffers_go_stale_on_tight_recurrences() {
    // A counter striding by 3 every iteration. Buffers train at
    // writeback, so with many iterations in flight the table lags
    // the front end and the dispatch-time stride prediction is
    // systematically out of date — the "stale entries" failure mode
    // the paper lists as RVP advantage 4 ("No stale values"). On a
    // *constant* sequence the same predictor is near-perfect.
    let (x, n, y) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let build = |stride: i64| {
        let mut b = ProgramBuilder::new();
        b.li(x, 0);
        b.li(n, 500);
        b.label("top");
        b.addi(x, x, stride);
        b.mul(y, x, 7);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        b.build().unwrap()
    };
    let run_buf = |p: &Program| {
        Simulator::new(
            UarchConfig::table1(),
            Scheme::buffer(
                Scope::AllInsts,
                rvp_vpred::BufferConfig::Stride(rvp_vpred::StrideConfig::default()),
            ),
            Recovery::Selective,
        )
        .run(p, 1 << 20)
        .unwrap()
    };
    let striding = run_buf(&build(3));
    let constant = run_buf(&build(0));
    assert!(striding.predictions > 100);
    assert!(
        striding.accuracy() < 0.3,
        "stale stride accuracy unexpectedly high: {}",
        striding.accuracy()
    );
    // (The loop counter itself still strides and stays stale, so
    // constant-sequence accuracy is bounded by its share of the
    // predictions rather than reaching 100%.)
    assert!(constant.accuracy() > 0.6, "constant-sequence accuracy: {}", constant.accuracy());
}

#[test]
fn refetch_squash_replays_branches_correctly() {
    // A mispredicting static-RVP load right before a data-dependent
    // branch: refetch recovery squashes and replays the branch region
    // repeatedly; committed counts and values must stay exact.
    let (ptr, v, n, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[1, 2]);
    b.li(ptr, 0x1000);
    b.li(n, 150);
    b.label("top");
    b.ld(v, ptr, 0); // pc 2: alternates -> always mispredicts
    b.and(t, v, 1); // first use
    b.beqz(t, "even"); // data-dependent branch right after the use
    b.addi(ptr, ptr, 0);
    b.label("even");
    b.ld(Reg::int(5), ptr, 8);
    b.st(Reg::int(5), ptr, 0);
    b.st(v, ptr, 8);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();
    let base = run(&p, Scheme::no_predict(), Recovery::Refetch);
    let srvp = run(&p, Scheme::srvp(plan), Recovery::Refetch);
    assert_eq!(base.committed, srvp.committed);
    assert!(srvp.squashes > 100, "squashes = {}", srvp.squashes);
}

#[test]
fn tiny_queues_still_drain() {
    // A 2-entry IQ forces maximal structural stalls; the model must
    // still make progress and commit everything.
    let cfg = UarchConfig { iq_int: 2, iq_fp: 2, rob_size: 4, ..UarchConfig::table1() };
    let p = counted_loop(100);
    let s =
        Simulator::new(cfg, Scheme::no_predict(), Recovery::Selective).run(&p, 1 << 20).unwrap();
    assert_eq!(s.committed, 202);
}

#[test]
fn rename_register_exhaustion_throttles_but_completes() {
    let cfg = UarchConfig { rename_regs: 2, ..UarchConfig::table1() };
    let p = counted_loop(100);
    let slow =
        Simulator::new(cfg, Scheme::no_predict(), Recovery::Selective).run(&p, 1 << 20).unwrap();
    let fast = run(&p, Scheme::no_predict(), Recovery::Selective);
    assert_eq!(slow.committed, fast.committed);
    assert!(slow.cycles >= fast.cycles);
}

#[test]
fn hardware_correlation_finds_other_register_reuse_unaided() {
    // The dead-register pattern: `ld w` reloads the value the dead
    // register `d` holds. Plain dRVP cannot see it (no same-register
    // reuse); the Jourdan-style hardware correlation learns the
    // source register with zero compiler involvement.
    let (p_, d, w, n) = (Reg::int(1), Reg::int(5), Reg::int(3), Reg::int(6));
    let values: Vec<u64> = (0..64u64).map(|i| i * 17 + 3).collect();
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &values);
    b.li(p_, 0x1000);
    b.li(n, 400);
    b.label("loop");
    b.ld(d, p_, 0); // fresh value
    b.st(d, p_, 0x1000); // spilled; d dead after
    b.ld(w, p_, 0x1000); // pc 4: reloads d's value
    b.mul(w, w, 3);
    b.addi(p_, p_, 8);
    b.and(p_, p_, 0x11f8);
    b.subi(n, n, 1);
    b.bnez(n, "loop");
    b.halt();
    let prog = b.build().unwrap();
    let drvp =
        run(&prog, Scheme::drvp(Scope::AllInsts, PredictionPlan::new()), Recovery::Selective);
    let hw = run(
        &prog,
        Scheme::hw_correlation(Scope::AllInsts, rvp_vpred::CorrelationConfig::default()),
        Recovery::Selective,
    );
    assert_eq!(drvp.committed, hw.committed);
    assert!(
        hw.correct_predictions > drvp.correct_predictions + 200,
        "hw {} vs drvp {}",
        hw.correct_predictions,
        drvp.correct_predictions
    );
    assert!(hw.accuracy() > 0.9, "accuracy {}", hw.accuracy());
}

#[test]
fn gabbay_predictor_runs() {
    let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &[5]);
    b.li(ptr, 0x1000);
    b.li(n, 300);
    b.label("top");
    b.ld(v, ptr, 0);
    b.subi(n, n, 1);
    b.bnez(n, "top");
    b.halt();
    let p = b.build().unwrap();
    let s = run(&p, Scheme::gabbay(Scope::AllInsts), Recovery::Selective);
    // The loop counter writer (never reusing) and the constant load
    // (always reusing) share... different registers here, so the load
    // becomes predictable.
    assert!(s.predictions > 0);
}

#[test]
fn cpi_stack_sums_to_cycles() {
    let p = counted_loop(500);
    for rec in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
        let s = run(&p, Scheme::drvp(Scope::AllInsts, PredictionPlan::new()), rec);
        assert_eq!(s.cpi.total(), s.cycles, "{rec:?}: {:?}", s.cpi);
    }
}

#[test]
fn obs_report_present_only_when_enabled() {
    let p = counted_loop(200);
    let off = run(&p, Scheme::no_predict(), Recovery::Selective);
    assert!(off.obs.is_none());

    let on = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .with_obs(ObsConfig { sample_interval: 64, ..ObsConfig::standard() })
        .run(&p, 1_000_000)
        .unwrap();
    let obs = on.obs.as_ref().expect("obs report");
    assert_eq!(obs.sample_interval, 64);
    let window_cycles: u64 = obs.samples.iter().map(|w| w.cycles).sum();
    let window_commits: u64 = obs.samples.iter().map(|w| w.committed).sum();
    assert_eq!(window_cycles, on.cycles);
    assert_eq!(window_commits, on.committed);
    // Instrumentation must not change the timing model.
    assert_eq!(on.cycles, off.cycles);
    assert_eq!(on.committed, off.committed);
}
