//! Structure-of-arrays layout for a decoded committed trace.
//!
//! A shared in-memory trace used to be an `Arc<[Committed]>`: 64 bytes
//! per dynamic instruction, streamed front to back by every grid cell.
//! The fetch stage only needs the next record's *PC* to drive the
//! I-cache model, and several fields (`old_value`, the effective
//! address, branch metadata) are consulted well after fetch or not at
//! all for most instructions — yet the AoS layout drags all of them
//! through the cache together. [`TraceColumns`] splits the trace into
//! a *hot* group (pc, destination, new value — touched by every
//! fetch/dispatch) and a *cold* group (old value, effective address,
//! next-pc and branch outcome), so the hot stream costs 14 bytes per
//! instruction instead of 64.
//!
//! `seq` is not stored at all: a trace is captured from `seq == 0` with
//! consecutive records, so the index *is* the sequence number. The
//! round-trip `Committed` → columns → [`TraceColumns::record`] is exact
//! (a property test enforces this), which is what lets
//! [`crate::SharedSource`] serve the record API unchanged.

use rvp_emu::Committed;
use rvp_isa::Reg;

/// Sentinel in the destination column for "writes no register".
const NO_DST: u8 = u8::MAX;

/// Flag bits for the cold per-record metadata byte.
const HAS_EFF_ADDR: u8 = 1 << 0;
const HAS_TAKEN: u8 = 1 << 1;
const TAKEN: u8 = 1 << 2;

/// A committed trace in columnar (structure-of-arrays) form.
///
/// Hot columns are what the per-cycle front end streams; cold columns
/// are materialized only when a full [`Committed`] record is assembled.
#[derive(Debug)]
pub struct TraceColumns {
    // Hot: one touch per fetched instruction.
    pc: Box<[u32]>,
    dst: Box<[u8]>,
    new_value: Box<[u64]>,
    // Cold: assembled into records on demand.
    old_value: Box<[u64]>,
    eff_addr: Box<[u64]>,
    next_pc: Box<[u32]>,
    flags: Box<[u8]>,
}

impl TraceColumns {
    /// Transposes `records` into columns.
    ///
    /// # Panics
    ///
    /// Panics if the records are not consecutive from `seq == 0` (the
    /// index-as-seq representation requires it) or a PC exceeds `u32`.
    pub fn from_records(records: &[Committed]) -> TraceColumns {
        let n = records.len();
        let mut pc = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        let mut new_value = Vec::with_capacity(n);
        let mut old_value = Vec::with_capacity(n);
        let mut eff_addr = Vec::with_capacity(n);
        let mut next_pc = Vec::with_capacity(n);
        let mut flags = Vec::with_capacity(n);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq as usize, i, "trace must be consecutive from seq 0");
            pc.push(u32::try_from(r.pc).expect("pc fits u32"));
            dst.push(r.dst.map_or(NO_DST, |d| d.index() as u8));
            new_value.push(r.new_value);
            old_value.push(r.old_value);
            eff_addr.push(r.eff_addr.unwrap_or(0));
            next_pc.push(u32::try_from(r.next_pc).expect("pc fits u32"));
            let mut f = 0u8;
            if r.eff_addr.is_some() {
                f |= HAS_EFF_ADDR;
            }
            if let Some(t) = r.taken {
                f |= HAS_TAKEN;
                if t {
                    f |= TAKEN;
                }
            }
            flags.push(f);
        }
        TraceColumns {
            pc: pc.into(),
            dst: dst.into(),
            new_value: new_value.into(),
            old_value: old_value.into(),
            eff_addr: eff_addr.into(),
            next_pc: next_pc.into(),
            flags: flags.into(),
        }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Approximate resident size: the seven columns cost 34 bytes per
    /// record (4+1+8 hot, 8+8+4+1 cold). This is the unit the shared
    /// in-memory trace cache's byte budget accounts in.
    pub fn approx_bytes(&self) -> u64 {
        self.len() as u64 * 34
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// The PC of record `i`, touching only the hot column — the fetch
    /// stage's peek path.
    #[inline]
    pub fn pc(&self, i: usize) -> Option<usize> {
        self.pc.get(i).map(|&p| p as usize)
    }

    /// Assembles the full record at index `i` (its `seq` is `i`).
    #[inline]
    pub fn record(&self, i: usize) -> Option<Committed> {
        if i >= self.len() {
            return None;
        }
        let f = self.flags[i];
        let d = self.dst[i];
        Some(Committed {
            seq: i as u64,
            pc: self.pc[i] as usize,
            next_pc: self.next_pc[i] as usize,
            dst: if d == NO_DST { None } else { Some(Reg::from_index(d as usize)) },
            old_value: self.old_value[i],
            new_value: self.new_value[i],
            eff_addr: if f & HAS_EFF_ADDR != 0 { Some(self.eff_addr[i]) } else { None },
            taken: if f & HAS_TAKEN != 0 { Some(f & TAKEN != 0) } else { None },
        })
    }

    /// Iterates the assembled records in order.
    pub fn records(&self) -> impl Iterator<Item = Committed> + '_ {
        (0..self.len()).map(|i| self.record(i).expect("in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic xorshift so the property test needs no external
    /// randomness source.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn arbitrary_record(seq: u64, rng: &mut XorShift) -> Committed {
        let r = rng.next();
        Committed {
            seq,
            pc: (rng.next() % 10_000) as usize,
            next_pc: (rng.next() % 10_000) as usize,
            dst: if r & 1 != 0 {
                Some(Reg::from_index((rng.next() % rvp_isa::NUM_REGS as u64) as usize))
            } else {
                None
            },
            old_value: rng.next(),
            new_value: rng.next(),
            eff_addr: if r & 2 != 0 { Some(rng.next()) } else { None },
            taken: if r & 4 != 0 { Some(r & 8 != 0) } else { None },
        }
    }

    #[test]
    fn round_trips_arbitrary_records_exactly() {
        let mut rng = XorShift(0x243F_6A88_85A3_08D3);
        for trial in 0..64 {
            let n = (rng.next() % 200) as usize;
            let records: Vec<Committed> =
                (0..n as u64).map(|seq| arbitrary_record(seq, &mut rng)).collect();
            let cols = TraceColumns::from_records(&records);
            assert_eq!(cols.len(), records.len(), "trial {trial}");
            for (i, r) in records.iter().enumerate() {
                assert_eq!(cols.record(i).as_ref(), Some(r), "trial {trial}, record {i}");
                assert_eq!(cols.pc(i), Some(r.pc), "trial {trial}, record {i}");
            }
            assert_eq!(cols.record(n), None);
            assert_eq!(cols.pc(n), None);
            assert_eq!(cols.records().collect::<Vec<_>>(), records);
        }
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn rejects_non_consecutive_seqs() {
        let mut rng = XorShift(1);
        let records = vec![arbitrary_record(3, &mut rng)];
        let _ = TraceColumns::from_records(&records);
    }
}
