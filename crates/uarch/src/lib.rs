//! Out-of-order superscalar timing model with register value prediction.
//!
//! This crate implements the processor of the paper's Table 1: a 9-stage,
//! 8-wide out-of-order machine with register renaming, split 32-entry
//! integer/FP instruction queues, 6 integer units (4 load/store capable),
//! 3 FP units, gshare branch prediction and a two-level cache hierarchy —
//! plus the paper's value-prediction machinery:
//!
//! * **prediction schemes** ([`Scheme`]): a scope filter, a profile
//!   plan, and any [`rvp_vpred::ValuePredictor`] from the string-keyed
//!   registry — the paper's static/dynamic RVP, buffer-based last-value
//!   prediction and the Gabbay–Mendelson register predictor, plus the
//!   zoo's stride, FCM, tournament-hybrid and TAGE-confidence members;
//! * **misprediction recovery** ([`Recovery`]): refetch (squash from the
//!   first use, like a branch mispredict), reissue (everything after the
//!   first use stays in the instruction queue until non-speculative), and
//!   selective reissue (only the dependence chain stays) — Section 4.3;
//! * the register-map-based prediction mechanism: a predicted
//!   instruction's consumers read the *old* physical mapping of the
//!   destination register and issue as soon as that value is ready.
//!
//! The model is trace-driven over the architectural committed stream,
//! consumed through the [`CommittedSource`] abstraction: live emulation
//! via [`rvp_emu::Emulator`] (the default), streaming replay of a
//! captured trace, or a shared in-memory trace fanned out to many
//! simulations of the same workload — all bit-identical in their
//! resulting [`SimStats`]. Wrong-path instructions after a branch
//! mispredict are modelled as a fetch bubble whose length equals the
//! pipeline-refill penalty (7 cycles); wrong value speculation *is*
//! simulated structurally, including instruction-queue pressure and
//! re-execution, because those effects are what Figures 3–8 measure.
//!
//! # Examples
//!
//! ```
//! use rvp_isa::{ProgramBuilder, Reg};
//! use rvp_uarch::{Recovery, Scheme, Simulator, UarchConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r = Reg::int(1);
//! let mut b = ProgramBuilder::new();
//! b.li(r, 1000);
//! b.label("top");
//! b.subi(r, r, 1);
//! b.bnez(r, "top");
//! b.halt();
//! let program = b.build()?;
//!
//! let stats = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
//!     .run(&program, 10_000)?;
//! assert!(stats.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

mod backend;
pub mod columns;
mod config;
mod core;
mod frontend;
mod meta;
mod recovery;
mod ring;
mod scheme;
pub mod source;
mod stats;
mod warmup;
mod wheel;

pub use crate::core::Simulator;
pub use columns::TraceColumns;
pub use config::{Latencies, UarchConfig};
pub use scheme::{PlanMode, Recovery, Scheme};
pub use source::{CommittedSource, EmuSource, ReplaySource, SharedSource, SourceKind};
pub use stats::{SimError, SimStats};
pub use warmup::WarmState;

// Re-export the predictor vocabulary `Scheme` is built from, so users
// of this crate need not depend on `rvp-vpred` directly.
pub use rvp_vpred::{
    list_value_predictors, new_value_predictor, value_predictor_names, BufferConfig,
    CorrelationConfig, DrvpConfig, LvpConfig, PredictionPlan, ReuseKind, Scope, ValuePredictor,
};

// Re-export the observability vocabulary `SimStats` is built from, so
// users of this crate need not depend on `rvp-obs` directly.
pub use rvp_obs::{CpiBucket, CpiStack, ObsConfig, ObsReport, PcEntry, WindowSample};
