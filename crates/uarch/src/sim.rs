use std::collections::VecDeque;

use rvp_bpred::{BranchKind, BranchPredictor};
use rvp_emu::{Committed, Emulator};
use rvp_isa::{ExecClass, Flow, Program, Reg, RegClass, NUM_REGS};
use rvp_mem::Hierarchy;
use rvp_obs::{CounterSnapshot, CpiBucket, ObsConfig, ObsReport, PcTable, Sampler};
use rvp_vpred::{
    BufferConfig, BufferPredictor, CorrelationPredictor, DrvpPredictor, GabbayPredictor, ReuseKind,
    Scope,
};

use crate::config::UarchConfig;
use crate::scheme::{Recovery, Scheme};
use crate::stats::{SimError, SimStats};

/// Cycles without a commit before the deadlock watchdog trips.
const WATCHDOG_CYCLES: u64 = 500_000;

/// One in-flight instruction (a reorder-buffer entry).
#[derive(Debug, Clone)]
struct Entry {
    rec: Committed,
    queue: RegClass,
    exec: ExecClass,
    is_store: bool,
    is_load: bool,
    /// Producer seqs for the register sources.
    deps: [Option<u64>; 2],
    in_iq: bool,
    issued_at: Option<u64>,
    complete_at: Option<u64>,
    done: bool,
    /// Earliest cycle this entry may (re)issue.
    earliest_issue: u64,
    /// Unverified predicted producers this entry's current result
    /// depends on.
    taint: Vec<u64>,
    // --- value prediction ---
    predicted: bool,
    /// The value the scheme would predict (tracked for all in-scope
    /// instructions so confidence counters can train on it).
    pred_value: Option<u64>,
    pred_correct: bool,
    /// Producer whose completion makes the predicted value readable
    /// (the *old* register mapping); `None` = readable immediately.
    pred_dep: Option<u64>,
    verified: bool,
    /// Extra memory-hierarchy latency (cache/TLB misses) charged at
    /// issue; nonzero marks this entry memory-bound for cycle
    /// accounting.
    mem_extra: u64,
    /// This entry was invalidated by a value mispredict and is
    /// re-executing (reissue/selective recovery).
    reissued: bool,
    /// Seq of the first instruction that read this entry's predicted
    /// value.
    first_use: Option<u64>,
    /// For the hardware-correlation scheme: a register observed (at
    /// rename) to hold the value this instruction produced.
    corr_observed: Option<Reg>,
    // --- branches ---
    /// This branch was mispredicted at fetch and stalled the front end.
    stalled_fetch: bool,
    // --- rollback bookkeeping for refetch squashes ---
    prev_last_value: Option<u64>,
    had_last_value: bool,
}

/// The out-of-order timing simulator.
///
/// Create one per run; [`Simulator::run`] drives a program to completion
/// (or an instruction budget) and returns [`SimStats`].
#[derive(Debug)]
pub struct Simulator {
    config: UarchConfig,
    scheme: Scheme,
    recovery: Recovery,
    // predictor state
    bpred: BranchPredictor,
    mem: Hierarchy,
    buffer: Option<BufferPredictor>,
    drvp: Option<DrvpPredictor>,
    gabbay: Option<GabbayPredictor>,
    correlation: Option<CorrelationPredictor>,
    obs: ObsConfig,
}

impl Simulator {
    /// Builds a simulator for the given machine, prediction scheme and
    /// recovery model.
    pub fn new(config: UarchConfig, scheme: Scheme, recovery: Recovery) -> Simulator {
        let buffer = match &scheme {
            Scheme::Lvp { config, .. } => {
                Some(BufferPredictor::new(BufferConfig::LastValue(*config)))
            }
            Scheme::Buffer { config, .. } => Some(BufferPredictor::new(*config)),
            _ => None,
        };
        let drvp = match &scheme {
            Scheme::DynamicRvp { config, .. } => Some(DrvpPredictor::new(*config)),
            _ => None,
        };
        let gabbay = match &scheme {
            Scheme::Gabbay { .. } => Some(GabbayPredictor::paper()),
            _ => None,
        };
        let correlation = match &scheme {
            Scheme::HwCorrelation { config, .. } => Some(CorrelationPredictor::new(*config)),
            _ => None,
        };
        Simulator {
            bpred: BranchPredictor::new(config.bpred),
            mem: Hierarchy::new(config.mem),
            buffer,
            drvp,
            gabbay,
            correlation,
            obs: ObsConfig::off(),
            config,
            scheme,
            recovery,
        }
    }

    /// Enables optional instrumentation (time-series sampling, per-PC
    /// telemetry) for subsequent runs. The cycle-accounting CPI stack
    /// is always on.
    pub fn with_obs(mut self, obs: ObsConfig) -> Simulator {
        self.obs = obs;
        self
    }

    /// Runs `program` for at most `max_insts` committed instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Emu`] for malformed programs and
    /// [`SimError::Deadlock`] if the pipeline stops making progress (a
    /// model invariant violation).
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<SimStats, SimError> {
        Core::new(self, program, max_insts).run()
    }
}

/// Why the front end is (re)filling an empty machine — the stall cause
/// empty-machine cycles are charged to. Set when a stall begins,
/// cleared at the next commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Redirect {
    None,
    Branch,
    ICache,
    ValueRefetch,
}

/// The running counter totals the sampler windows are deltas of.
fn snapshot(stats: &SimStats) -> CounterSnapshot {
    CounterSnapshot {
        committed: stats.committed,
        predictions: stats.predictions,
        correct_predictions: stats.correct_predictions,
        iq_int_occupancy_sum: stats.iq_int_occupancy_sum,
        iq_fp_occupancy_sum: stats.iq_fp_occupancy_sum,
    }
}

/// Per-run pipeline state.
struct Core<'s, 'p> {
    sim: &'s mut Simulator,
    program: &'p Program,
    emu: Emulator<'p>,
    max_insts: u64,
    pulled: u64,
    trace_done: bool,
    /// Correct-path records awaiting fetch (refetch squashes push records
    /// back here).
    trace_buf: VecDeque<Committed>,
    /// Fetched records waiting to enter the ROB: (record, arrival cycle,
    /// whether this branch stalled fetch pending its resolution).
    frontend: VecDeque<(Committed, u64, bool)>,
    rob: VecDeque<Entry>,
    /// Seq of the youngest in-flight writer of each register.
    last_writer: [Option<u64>; NUM_REGS],
    /// Program-order register values at the dispatch point.
    shadow: [u64; NUM_REGS],
    /// Last committed-path value produced by each static instruction.
    last_value: Vec<Option<u64>>,
    /// Seq of the most recently dispatched instance of each static
    /// instruction (the old mapping of a last-value-exclusive register).
    last_instance: Vec<Option<u64>>,
    now: u64,
    fetch_resume_at: u64,
    /// Branch seq the fetcher is stalled on, if any.
    stalled_on: Option<u64>,
    /// Last I-cache line touched by fetch.
    last_line: u64,
    halted_fetch: bool,
    stats: SimStats,
    last_commit_cycle: u64,
    // --- observability ---
    /// Most recent front-end redirect cause (cycle accounting).
    redirect: Redirect,
    /// Dispatch was blocked by a full ROB/IQ/rename file this cycle.
    dispatch_blocked: bool,
    /// Optional windowed time-series sampler.
    sampler: Option<Sampler>,
    /// Optional per-static-instruction outcome table.
    pc_table: Option<PcTable>,
}

impl<'s, 'p> Core<'s, 'p> {
    fn new(sim: &'s mut Simulator, program: &'p Program, max_insts: u64) -> Core<'s, 'p> {
        let mut shadow = [0u64; NUM_REGS];
        shadow[rvp_isa::analysis::abi::SP.index()] = rvp_emu::STACK_TOP;
        let sampler = (sim.obs.sample_interval > 0)
            .then(|| Sampler::new(sim.obs.sample_interval, sim.obs.ring_capacity));
        let pc_table = sim.obs.track_pc.then(|| PcTable::new(program.len()));
        Core {
            sampler,
            pc_table,
            emu: Emulator::new(program),
            program,
            max_insts,
            pulled: 0,
            trace_done: false,
            trace_buf: VecDeque::new(),
            frontend: VecDeque::new(),
            rob: VecDeque::new(),
            last_writer: [None; NUM_REGS],
            shadow,
            last_value: vec![None; program.len()],
            last_instance: vec![None; program.len()],
            now: 0,
            fetch_resume_at: 0,
            stalled_on: None,
            last_line: u64::MAX,
            halted_fetch: false,
            stats: SimStats::default(),
            last_commit_cycle: 0,
            redirect: Redirect::None,
            dispatch_blocked: false,
            sim,
        }
    }

    fn run(mut self) -> Result<SimStats, SimError> {
        loop {
            let committed_before = self.stats.committed;
            self.dispatch_blocked = false;
            self.process_completions();
            self.commit();
            self.issue();
            self.dispatch();
            self.fetch()?;
            self.stats.iq_int_occupancy_sum += self.iq_count(RegClass::Int) as u64;
            self.stats.iq_fp_occupancy_sum += self.iq_count(RegClass::Fp) as u64;
            if self.finished() {
                break;
            }
            if self.now - self.last_commit_cycle > WATCHDOG_CYCLES {
                return Err(SimError::Deadlock {
                    cycle: self.now,
                    committed: self.stats.committed,
                });
            }
            // Cycle accounting: charge this elapsed cycle to exactly one
            // bucket (the final, non-elapsing iteration is never
            // charged, so the stack sums to `cycles` by construction).
            let committed_now = self.stats.committed - committed_before;
            if committed_now > 0 {
                self.redirect = Redirect::None;
            }
            let bucket = self.classify_cycle(committed_now);
            self.stats.cpi.add(bucket, 1);
            if let Some(sampler) = &mut self.sampler {
                sampler.tick(self.now, snapshot(&self.stats));
            }
            self.now += 1;
        }
        self.stats.cycles = self.now.max(1);
        // The degenerate empty run elapses one nominal cycle.
        let accounted = self.stats.cpi.total();
        if accounted < self.stats.cycles {
            self.stats.cpi.add(CpiBucket::Base, self.stats.cycles - accounted);
        }
        self.stats.branch = *self.sim.bpred.stats();
        self.stats.mem = *self.sim.mem.stats();
        self.finish_obs();
        Ok(self.stats)
    }

    /// Folds the optional instrumentation into the final stats.
    fn finish_obs(&mut self) {
        if self.sampler.is_none() && self.pc_table.is_none() {
            return;
        }
        let mut report = ObsReport::default();
        if let Some(mut sampler) = self.sampler.take() {
            report.sample_interval = sampler.interval();
            sampler.finish(self.now, snapshot(&self.stats));
            let (samples, dropped) = sampler.into_windows();
            report.samples = samples;
            report.dropped_windows = dropped;
        }
        if let Some(table) = self.pc_table.take() {
            report.top_costly = table.top_by_costly(self.sim.obs.top_k);
            report.top_correct = table.top_by_correct(self.sim.obs.top_k);
        }
        self.stats.obs = Some(report);
    }

    /// The cycle-attribution priority ladder (documented in DESIGN.md).
    fn classify_cycle(&self, committed_now: u64) -> CpiBucket {
        if committed_now > 0 {
            return CpiBucket::Base;
        }
        if let Some(head) = self.rob.front() {
            if head.reissued && !head.done {
                return CpiBucket::Reissue;
            }
            if !head.done && head.issued_at.is_some() && head.mem_extra > 0 {
                return CpiBucket::DCache;
            }
            if self.dispatch_blocked {
                return CpiBucket::QueueFull;
            }
            return CpiBucket::Base;
        }
        // Empty machine: charge the front end by redirect cause.
        if self.stalled_on.is_some() {
            return CpiBucket::BranchMispredict;
        }
        match self.redirect {
            Redirect::ValueRefetch => CpiBucket::ValueRefetch,
            Redirect::Branch => CpiBucket::BranchMispredict,
            Redirect::ICache => CpiBucket::ICache,
            Redirect::None => CpiBucket::FetchStall,
        }
    }

    fn finished(&mut self) -> bool {
        self.rob.is_empty()
            && self.frontend.is_empty()
            && self.trace_buf.is_empty()
            && (self.trace_done || self.pulled >= self.max_insts || self.halted_fetch)
    }

    // ------------------------------------------------------------------
    // ROB helpers
    // ------------------------------------------------------------------

    fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.rec.seq;
        if seq < head {
            return None;
        }
        let i = (seq - head) as usize;
        (i < self.rob.len()).then_some(i)
    }

    /// Availability of the value produced by `dep_seq` at the current
    /// cycle: `None` = not ready; `Some(taints)` = ready, carrying the
    /// given speculative taints.
    fn dep_avail(&self, dep_seq: u64) -> Option<Vec<u64>> {
        let Some(i) = self.rob_index(dep_seq) else {
            // Younger than the ROB tail (squashed, awaiting refetch):
            // not available. Older than the head: committed long ago.
            let awaiting_refetch = self.rob.back().is_some_and(|t| dep_seq > t.rec.seq);
            return if awaiting_refetch { None } else { Some(Vec::new()) };
        };
        let p = &self.rob[i];
        if p.done {
            return Some(p.taint.clone());
        }
        if p.predicted && !p.verified {
            // Consumers may read the old mapping (the predicted value)
            // once *that* value is ready.
            let mut taints = match p.pred_dep {
                None => Vec::new(),
                Some(q) => match self.rob_index(q) {
                    None => Vec::new(),
                    Some(qi) => {
                        let q = &self.rob[qi];
                        if !q.done {
                            return None;
                        }
                        q.taint.clone()
                    }
                },
            };
            taints.push(dep_seq);
            return Some(taints);
        }
        None
    }

    // ------------------------------------------------------------------
    // Completion / verification / recovery
    // ------------------------------------------------------------------

    fn process_completions(&mut self) {
        // Seq order matters: older mispredicts must recover first.
        let mut idx = 0;
        while idx < self.rob.len() {
            let e = &self.rob[idx];
            if e.done || e.complete_at != Some(self.now) {
                idx += 1;
                continue;
            }
            let seq = e.rec.seq;
            let stalled_fetch = e.stalled_fetch;
            let predicted = e.predicted;
            let pred_correct = e.pred_correct;
            let first_use = e.first_use;
            let (pc, is_load, dst, new_value) = (e.rec.pc, e.is_load, e.rec.dst, e.rec.new_value);

            self.rob[idx].done = true;

            // Buffer-based predictors (LVP, stride, context, hybrid)
            // train at writeback, when the result exists — the standard
            // modelling point between the paper's two alternatives
            // ("insert speculative values ... and possibly pollute it, or
            // hold off inserting values until they become
            // non-speculative, forcing new instructions to possibly use
            // stale entries"): entries lag in-flight work by a few
            // cycles, and squashed-then-replayed instructions retrain.
            if let (Scheme::Lvp { scope, .. } | Scheme::Buffer { scope, .. }, Some(_)) =
                (&self.sim.scheme, dst)
            {
                if scope.admits(is_load, true) {
                    self.sim.buffer.as_mut().expect("buffer state").train(pc, new_value);
                }
            }

            if stalled_fetch {
                self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
                if self.stalled_on == Some(seq) {
                    self.stalled_on = None;
                }
            }

            if predicted {
                self.rob[idx].verified = true;
                if pred_correct {
                    self.clear_taint(seq);
                } else if let Some(fu) = first_use {
                    self.stats.costly_mispredictions += 1;
                    if let Some(table) = &mut self.pc_table {
                        table.record_costly(pc);
                    }
                    match self.sim.recovery {
                        Recovery::Refetch => {
                            self.squash_from(fu);
                            // After a squash the ROB shrank; restart the
                            // scan from this entry's position.
                            idx = self.rob_index(seq).unwrap_or(0);
                        }
                        Recovery::Reissue | Recovery::Selective => {
                            self.invalidate_dependents(seq);
                        }
                    }
                }
            }
            idx += 1;
        }
    }

    /// Removes a verified-correct prediction from every taint set.
    fn clear_taint(&mut self, seq: u64) {
        for e in &mut self.rob {
            e.taint.retain(|&t| t != seq);
        }
    }

    /// Reissue-style recovery: every issued instruction whose result
    /// depends on the mispredicted value re-executes one cycle later.
    fn invalidate_dependents(&mut self, bad: u64) {
        let next = self.now + 1;
        for e in &mut self.rob {
            if let Some(pos) = e.taint.iter().position(|&t| t == bad) {
                e.taint.swap_remove(pos);
                if e.issued_at.is_some() {
                    e.issued_at = None;
                    e.complete_at = None;
                    e.done = false;
                    e.earliest_issue = next;
                    e.in_iq = true;
                    e.reissued = true;
                    self.stats.reissued_insts += 1;
                }
            }
        }
    }

    /// Refetch-style recovery: squash everything from the first use of
    /// the mispredicted value onward and refetch it.
    fn squash_from(&mut self, first: u64) {
        self.stats.squashes += 1;
        self.redirect = Redirect::ValueRefetch;

        // Drop not-yet-dispatched fetched instructions.
        let mut records: Vec<Committed> = Vec::new();
        while let Some(&(rec, ..)) = self.frontend.back() {
            if rec.seq >= first {
                records.push(rec);
                self.frontend.pop_back();
            } else {
                break;
            }
        }

        // Drop ROB tail, rolling back the dispatch-time shadow state in
        // reverse order.
        while let Some(e) = self.rob.back() {
            if e.rec.seq < first {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_insts += 1;
            if let Some(dst) = e.rec.dst {
                self.shadow[dst.index()] = e.rec.old_value;
                self.last_value[e.rec.pc] =
                    if e.had_last_value { Some(e.prev_last_value.unwrap_or(0)) } else { None };
            }
            records.push(e.rec);
        }

        // Records were collected youngest-first; push them back so the
        // oldest is fetched first again.
        records.sort_by_key(|r| r.seq);
        for rec in records.into_iter().rev() {
            self.trace_buf.push_front(rec);
        }

        // Rebuild the rename map from the surviving entries.
        self.last_writer = [None; NUM_REGS];
        for e in &self.rob {
            if let Some(dst) = e.rec.dst {
                self.last_writer[dst.index()] = Some(e.rec.seq);
            }
        }
        // First-use markers pointing at squashed consumers are stale.
        for e in &mut self.rob {
            if e.first_use.is_some_and(|f| f >= first) {
                e.first_use = None;
            }
        }
        if self.stalled_on.is_some_and(|s| s >= first) {
            self.stalled_on = None;
        }
        self.halted_fetch = false;
        self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.sim.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || !head.taint.is_empty() || (head.predicted && !head.verified) {
                break;
            }
            let e = self.rob.pop_front().expect("non-empty");
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
            if e.is_load {
                self.stats.loads += 1;
            }
            if e.predicted {
                self.stats.predictions += 1;
                if e.pred_correct {
                    self.stats.correct_predictions += 1;
                }
                if let Some(table) = &mut self.pc_table {
                    table.record_commit(e.rec.pc, e.pred_correct);
                }
            }
            if let Some(dst) = e.rec.dst {
                if self.last_writer[dst.index()] == Some(e.rec.seq) {
                    self.last_writer[dst.index()] = None;
                }
            }
            // Train value predictors with architectural outcomes. (The
            // branch predictor trains at fetch with immediate resolution —
            // perfect history repair, the trace-driven idealization — so
            // branch behaviour is identical across value-prediction
            // schemes.)
            if let Some(dst) = e.rec.dst {
                let in_scope = |scope: Scope| scope.admits(e.is_load, true);
                match (&self.sim.scheme, e.pred_value) {
                    // Buffer predictors train speculatively at dispatch.
                    (Scheme::DynamicRvp { scope, .. }, Some(v)) if in_scope(*scope) => {
                        self.sim
                            .drvp
                            .as_mut()
                            .expect("drvp state")
                            .train(e.rec.pc, v == e.rec.new_value);
                    }
                    (Scheme::Gabbay { scope }, _) if in_scope(*scope) => {
                        self.sim
                            .gabbay
                            .as_mut()
                            .expect("gabbay state")
                            .train(dst, e.rec.old_value == e.rec.new_value);
                    }
                    (Scheme::HwCorrelation { scope, .. }, pv) if in_scope(*scope) => {
                        let hit = pv == Some(e.rec.new_value);
                        self.sim.correlation.as_mut().expect("correlation state").train(
                            e.rec.pc,
                            hit,
                            e.corr_observed,
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let cfg = &self.sim.config;
        let (mut int_used, mut fp_used, mut ldst_used) = (0usize, 0usize, 0usize);
        let lat = cfg.lat;
        let (int_units, fp_units, ldst_ports) = (cfg.int_units, cfg.fp_units, cfg.ldst_ports);

        for i in 0..self.rob.len() {
            if int_used >= int_units && fp_used >= fp_units {
                break;
            }
            let e = &self.rob[i];
            if !e.in_iq || e.issued_at.is_some() || e.earliest_issue > self.now {
                continue;
            }
            // Functional-unit availability.
            let exec = e.exec;
            let is_mem = matches!(exec, ExecClass::Load | ExecClass::Store);
            let is_fp = matches!(exec, ExecClass::FpAdd | ExecClass::FpMul | ExecClass::FpDiv);
            if is_fp {
                if fp_used >= fp_units {
                    continue;
                }
            } else if int_used >= int_units || (is_mem && ldst_used >= ldst_ports) {
                continue;
            }

            // Register-source readiness.
            let mut taints: Vec<u64> = Vec::new();
            let mut ready = true;
            for dep in self.rob[i].deps.into_iter().flatten() {
                match self.dep_avail(dep) {
                    Some(ts) => taints.extend(ts),
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }

            // Memory ordering with oracle disambiguation (the
            // execution-driven simulator knows every effective address):
            // a load waits only for older stores to the same 8-byte
            // block, and forwards once that store completes. Independent
            // stores never block it.
            if self.rob[i].is_load {
                let addr_block = self.rob[i].rec.eff_addr.map(|a| a & !7);
                let mut blocked = false;
                for j in 0..i {
                    let s = &self.rob[j];
                    if !s.is_store || s.rec.eff_addr.map(|a| a & !7) != addr_block {
                        continue;
                    }
                    if !s.done {
                        blocked = true;
                        break;
                    }
                    taints.extend(s.taint.iter().copied());
                }
                if blocked {
                    continue;
                }
            }

            // Issue.
            if is_fp {
                fp_used += 1;
            } else {
                int_used += 1;
                if is_mem {
                    ldst_used += 1;
                }
            }
            let mut latency = match exec {
                ExecClass::IntAlu => lat.int_alu,
                ExecClass::IntMul => lat.int_mul,
                ExecClass::IntDiv => lat.int_div,
                ExecClass::FpAdd => lat.fp_add,
                ExecClass::FpMul => lat.fp_mul,
                ExecClass::FpDiv => lat.fp_div,
                ExecClass::Load => lat.load,
                ExecClass::Store => lat.store,
            };
            let mut mem_extra = 0;
            if let Some(addr) = self.rob[i].rec.eff_addr {
                if self.rob[i].is_load {
                    mem_extra = self.sim.mem.access_data(addr, false);
                    latency += mem_extra;
                } else {
                    // Stores access the hierarchy for state/stats, but a
                    // write buffer hides their miss latency.
                    let _ = self.sim.mem.access_data(addr, true);
                }
            }
            taints.sort_unstable();
            taints.dedup();
            let e = &mut self.rob[i];
            e.issued_at = Some(self.now);
            e.complete_at = Some(self.now + latency);
            e.mem_extra = mem_extra;
            e.taint = taints;
            // Queue-slot release policy per recovery scheme.
            match self.sim.recovery {
                Recovery::Refetch => e.in_iq = false,
                Recovery::Selective => {
                    if e.taint.is_empty() && (!e.predicted || e.verified) {
                        e.in_iq = false;
                    }
                }
                Recovery::Reissue => { /* released in release_iq_slots */ }
            }
        }
        self.release_iq_slots();
    }

    /// Frees queue slots held by issued instructions once the recovery
    /// scheme allows.
    fn release_iq_slots(&mut self) {
        match self.sim.recovery {
            Recovery::Refetch => {}
            Recovery::Selective => {
                for e in &mut self.rob {
                    if e.in_iq
                        && e.issued_at.is_some()
                        && e.taint.is_empty()
                        && (!e.predicted || e.verified)
                    {
                        e.in_iq = false;
                    }
                }
            }
            Recovery::Reissue => {
                // Everything younger than an unverified prediction stays.
                let oldest_unverified =
                    self.rob.iter().filter(|e| e.predicted && !e.verified).map(|e| e.rec.seq).min();
                for e in &mut self.rob {
                    if e.in_iq && e.issued_at.is_some() {
                        let held = oldest_unverified.is_some_and(|s| e.rec.seq > s);
                        if !held {
                            e.in_iq = false;
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename + queue insertion + value prediction)
    // ------------------------------------------------------------------

    fn iq_count(&self, class: RegClass) -> usize {
        self.rob.iter().filter(|e| e.in_iq && e.queue == class).count()
    }

    fn inflight_writers(&self, class: RegClass) -> usize {
        self.rob.iter().filter(|e| e.rec.dst.is_some_and(|d| d.class() == class)).count()
    }

    fn dispatch(&mut self) {
        let mut nonload_preds_this_cycle = 0usize;
        for _ in 0..self.sim.config.dispatch_width {
            let Some(&(rec, arrival, _)) = self.frontend.front() else { break };
            if arrival > self.now {
                break;
            }
            if self.rob.len() >= self.sim.config.rob_size {
                self.dispatch_blocked = true;
                break;
            }
            let inst = &self.program.insts()[rec.pc];
            let queue = inst.queue_class();
            if self.iq_count(queue)
                >= if queue == RegClass::Int {
                    self.sim.config.iq_int
                } else {
                    self.sim.config.iq_fp
                }
            {
                self.dispatch_blocked = true;
                break;
            }
            if let Some(dst) = rec.dst {
                if self.inflight_writers(dst.class()) >= self.sim.config.rename_regs {
                    self.dispatch_blocked = true;
                    break;
                }
            }
            let (rec, _, stalled) = self.frontend.pop_front().expect("non-empty");

            // Source dependences on in-flight producers.
            let mut deps = [None, None];
            for (k, src) in inst.srcs().into_iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        deps[k] = self.last_writer[r.index()];
                    }
                }
            }

            // Value prediction decision. Predicted non-loads need an
            // extra register read port to fetch the old value for
            // verification; a configured port count caps them per cycle.
            let (mut predicted, pred_value, pred_dep) = self.predict(&rec, inst.is_load());
            if predicted && !inst.is_load() {
                match self.sim.config.pred_ports {
                    Some(ports) if nonload_preds_this_cycle >= ports => predicted = false,
                    _ => nonload_preds_this_cycle += 1,
                }
            }
            let pred_correct = pred_value == Some(rec.new_value);

            // Mark first use on speculative producers.
            if self.sim.scheme.is_predicting() {
                let my_seq = rec.seq;
                for dep in deps.into_iter().flatten() {
                    if let Some(pi) = self.rob_index(dep) {
                        let p = &mut self.rob[pi];
                        if p.predicted && !p.verified && p.first_use.is_none() {
                            p.first_use = Some(my_seq);
                        }
                    }
                }
            }

            // Hardware correlation learning: which same-class register
            // holds the value this instruction is producing (preferring
            // the destination itself — plain same-register reuse).
            let corr_observed = match (&self.sim.scheme, rec.dst) {
                (Scheme::HwCorrelation { scope, .. }, Some(dst))
                    if scope.admits(inst.is_load(), true) =>
                {
                    if rec.old_value == rec.new_value {
                        Some(dst)
                    } else {
                        (0..rvp_isa::NUM_REGS_PER_CLASS)
                            .map(|n| Reg::new(dst.class(), n))
                            .find(|r| !r.is_zero() && self.shadow[r.index()] == rec.new_value)
                    }
                }
                _ => None,
            };

            // Shadow state (with rollback info for refetch squashes).
            let mut prev_last_value = None;
            let mut had_last_value = false;
            if let Some(dst) = rec.dst {
                self.shadow[dst.index()] = rec.new_value;
                self.last_writer[dst.index()] = Some(rec.seq);
                prev_last_value = self.last_value[rec.pc];
                had_last_value = prev_last_value.is_some();
                self.last_value[rec.pc] = Some(rec.new_value);
                self.last_instance[rec.pc] = Some(rec.seq);
            }

            self.rob.push_back(Entry {
                rec,
                queue,
                exec: inst.exec_class(),
                is_store: inst.is_store(),
                is_load: inst.is_load(),
                deps,
                in_iq: true,
                issued_at: None,
                complete_at: None,
                done: false,
                earliest_issue: 0,
                mem_extra: 0,
                reissued: false,
                taint: Vec::new(),
                predicted: predicted && pred_value.is_some(),
                pred_value,
                pred_correct,
                pred_dep,
                verified: false,
                first_use: None,
                corr_observed,
                stalled_fetch: stalled,
                prev_last_value: prev_last_value.or(Some(0)).filter(|_| had_last_value),
                had_last_value,
            });
        }
    }

    /// Scheme-specific prediction at rename time. Returns
    /// `(predict?, candidate value, producer gating the value's
    /// availability)`. The candidate is computed for *every* in-scope
    /// instruction so confidence counters can train on unpredicted ones.
    fn predict(&mut self, rec: &Committed, is_load: bool) -> (bool, Option<u64>, Option<u64>) {
        let Some(dst) = rec.dst else { return (false, None, None) };
        let old_mapping = |core: &Core<'_, '_>| core.last_writer[dst.index()];

        match &self.sim.scheme {
            Scheme::NoPredict => (false, None, None),
            Scheme::Lvp { scope, .. } | Scheme::Buffer { scope, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                // The buffer supplies the value directly: no register
                // dependence at all.
                let v = self.sim.buffer.as_ref().expect("buffer state").predict(rec.pc);
                (v.is_some(), v, None)
            }
            Scheme::StaticRvp { plan } => {
                let Some(kind) = plan.kind(rec.pc) else { return (false, None, None) };
                let (v, dep) = self.reuse_value(rec, dst, kind);
                (true, Some(v), dep)
            }
            Scheme::DynamicRvp { scope, plan, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let kind = plan.kind(rec.pc).unwrap_or(ReuseKind::SameReg);
                let (v, dep) = self.reuse_value(rec, dst, kind);
                let confident = self.sim.drvp.as_ref().expect("drvp state").confident(rec.pc);
                (confident, Some(v), dep)
            }
            Scheme::Gabbay { scope } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let confident = self.sim.gabbay.as_ref().expect("gabbay state").confident(dst);
                (confident, Some(rec.old_value), old_mapping(self))
            }
            Scheme::HwCorrelation { scope, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let p = self.sim.correlation.as_ref().expect("correlation state");
                match p.candidate(rec.pc) {
                    Some(r) if r.class() == dst.class() => {
                        let value = if r == dst { rec.old_value } else { self.shadow[r.index()] };
                        (p.confident(rec.pc), Some(value), self.last_writer[r.index()])
                    }
                    _ => (false, None, None),
                }
            }
        }
    }

    /// The value a register-reuse relation predicts, and the in-flight
    /// producer whose completion makes it readable.
    fn reuse_value(&self, rec: &Committed, dst: Reg, kind: ReuseKind) -> (u64, Option<u64>) {
        match kind {
            ReuseKind::SameReg => (rec.old_value, self.last_writer[dst.index()]),
            ReuseKind::OtherReg(r) => (self.shadow[r.index()], self.last_writer[r.index()]),
            // The compiler gave the instruction an exclusive register, so
            // after the first execution the register holds the last
            // value; its old mapping is this instruction's *previous
            // dynamic instance*, which has almost always completed.
            ReuseKind::LastValue => {
                (self.last_value[rec.pc].unwrap_or(rec.old_value), self.last_instance[rec.pc])
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn refill(&mut self) -> Result<(), SimError> {
        if self.trace_buf.is_empty() && !self.trace_done && self.pulled < self.max_insts {
            match self.emu.step()? {
                Some(rec) => {
                    self.trace_buf.push_back(rec);
                    self.pulled += 1;
                }
                None => self.trace_done = true,
            }
        }
        Ok(())
    }

    fn fetch(&mut self) -> Result<(), SimError> {
        if self.now < self.fetch_resume_at || self.stalled_on.is_some() {
            if !self.halted_fetch {
                self.stats.fetch_stall_cycles += 1;
            }
            return Ok(());
        }
        if self.halted_fetch {
            return Ok(());
        }
        let mut taken_blocks = 0usize;
        let arrival = self.now + self.sim.config.frontend_depth;

        for _ in 0..self.sim.config.fetch_width {
            self.refill()?;
            let Some(&rec) = self.trace_buf.front() else { break };

            // Instruction-cache access per new line.
            let line = Program::byte_addr(rec.pc) / self.sim.config.mem.l1i.line_bytes;
            if line != self.last_line {
                let extra = self.sim.mem.access_inst(Program::byte_addr(rec.pc));
                self.last_line = line;
                if extra > 0 {
                    self.fetch_resume_at = self.now + extra;
                    self.redirect = Redirect::ICache;
                    break;
                }
            }

            let rec = self.trace_buf.pop_front().expect("non-empty");
            let inst = &self.program.insts()[rec.pc];

            if matches!(inst.kind, rvp_isa::Kind::Halt) {
                self.halted_fetch = true;
                self.frontend.push_back((rec, arrival, false));
                break;
            }

            let bkind = match inst.flow() {
                Flow::FallThrough => None,
                Flow::Always(t) => {
                    if inst.is_call() {
                        Some(BranchKind::Call { target: t })
                    } else {
                        Some(BranchKind::UncondDirect { target: t })
                    }
                }
                Flow::Conditional(t) => Some(BranchKind::CondDirect { target: t }),
                Flow::Indirect(_) => Some(BranchKind::Indirect),
                Flow::Return => Some(BranchKind::Return),
                Flow::Halt => None,
            };

            let Some(kind) = bkind else {
                self.frontend.push_back((rec, arrival, false));
                continue;
            };

            // Predict and train in one step (perfect history repair):
            // branch-predictor behaviour is then identical across value-
            // prediction schemes, isolating the effect under study.
            let actual_taken = rec.taken.unwrap_or(true);
            let correct = self.sim.bpred.update(rec.pc, kind, actual_taken, rec.next_pc);

            if !correct {
                // Fetch goes down the wrong path: bubble until resolve.
                self.stalled_on = Some(rec.seq);
                self.redirect = Redirect::Branch;
                self.frontend.push_back((rec, arrival, true));
                break;
            }
            self.frontend.push_back((rec, arrival, false));
            if actual_taken {
                taken_blocks += 1;
                if taken_blocks >= self.sim.config.fetch_blocks {
                    break;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::ProgramBuilder;
    use rvp_vpred::{PredictionPlan, Scope};

    fn counted_loop(iters: i64) -> Program {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, iters);
        b.label("top");
        b.subi(r, r, 1);
        b.bnez(r, "top");
        b.halt();
        b.build().unwrap()
    }

    fn run(p: &Program, scheme: Scheme, rec: Recovery) -> SimStats {
        Simulator::new(UarchConfig::table1(), scheme, rec).run(p, 1_000_000).unwrap()
    }

    #[test]
    fn commits_every_instruction_exactly_once() {
        let p = counted_loop(500);
        let s = run(&p, Scheme::NoPredict, Recovery::Selective);
        // li + 500*(sub+bne) + halt
        assert_eq!(s.committed, 1 + 1000 + 1);
        assert!(s.cycles > 0);
    }

    #[test]
    fn dependent_chain_is_serialized() {
        // A loop of dependent adds (warm caches): IPC must be ~1 — each
        // add waits for the previous one on a 1-cycle ALU.
        let (r, n) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new();
        b.li(r, 0);
        b.li(n, 200);
        b.label("top");
        for _ in 0..16 {
            b.addi(r, r, 1);
        }
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let s = run(&p, Scheme::NoPredict, Recovery::Selective);
        assert!(s.ipc() < 1.4, "ipc = {}", s.ipc());
        assert!(s.ipc() > 0.8, "ipc = {}", s.ipc());
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        // 6 independent chains in a loop: should sustain well over 2 IPC.
        let n = Reg::int(7);
        let mut b = ProgramBuilder::new();
        for i in 0..6u8 {
            b.li(Reg::int(i + 1), 0);
        }
        b.li(n, 200);
        b.label("top");
        for _ in 0..4 {
            for i in 0..6u8 {
                b.addi(Reg::int(i + 1), Reg::int(i + 1), 1);
            }
        }
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let s = run(&p, Scheme::NoPredict, Recovery::Selective);
        assert!(s.ipc() > 2.5, "ipc = {}", s.ipc());
    }

    #[test]
    fn branch_mispredicts_cost_cycles() {
        // A data-dependent unpredictable branch pattern vs a steady loop.
        let steady = counted_loop(2000);
        let s1 = run(&steady, Scheme::NoPredict, Recovery::Selective);
        assert!(
            s1.branch.direction_accuracy() > 0.95,
            "accuracy = {}",
            s1.branch.direction_accuracy()
        );
    }

    #[test]
    fn value_prediction_breaks_dependence_chains() {
        // A pointer-chase-like loop where each iteration's load feeds a
        // long dependent computation, and the load always returns the
        // same value (perfect same-register reuse).
        let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[5]);
        b.li(ptr, 0x1000);
        b.li(n, 400);
        b.label("top");
        b.ld(v, ptr, 0);
        // Dependent chain off the loaded value.
        for _ in 0..4 {
            b.mul(v, v, 1);
        }
        b.st(v, ptr, 0); // stores 5 back; the load stays constant
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();

        let base = run(&p, Scheme::NoPredict, Recovery::Selective);
        let drvp =
            run(&p, Scheme::drvp(Scope::LoadsOnly, PredictionPlan::new()), Recovery::Selective);
        assert_eq!(base.committed, drvp.committed);
        assert!(drvp.predictions > 0, "no predictions made");
        assert!(drvp.accuracy() > 0.9, "accuracy = {}", drvp.accuracy());
        assert!(drvp.ipc() > base.ipc() * 1.02, "drvp {} vs base {}", drvp.ipc(), base.ipc());
    }

    #[test]
    fn lvp_matches_on_constant_loads() {
        let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[9]);
        b.li(ptr, 0x1000);
        b.li(n, 300);
        b.label("top");
        b.ld(v, ptr, 0);
        b.mul(v, v, 2);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let s = run(&p, Scheme::lvp_loads(), Recovery::Selective);
        assert!(s.predictions > 200, "predictions = {}", s.predictions);
        assert!(s.accuracy() > 0.95);
    }

    #[test]
    fn static_rvp_predicts_marked_loads_always() {
        let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[7]);
        b.li(ptr, 0x1000);
        b.li(n, 100);
        b.label("top");
        b.ld(v, ptr, 0); // pc 2
        b.add(Reg::int(4), v, 0);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();
        let s = run(&p, Scheme::StaticRvp { plan }, Recovery::Selective);
        assert_eq!(s.predictions, 100);
        // First iteration mispredicts (register held 0), then all hit.
        assert_eq!(s.correct_predictions, 99);
    }

    #[test]
    fn mispredictions_recover_correctly_under_all_schemes() {
        // A load whose value alternates: confidence filters most
        // predictions, but static RVP predicts always, forcing recovery.
        let (ptr, v, n, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[1, 2]);
        b.li(ptr, 0x1000);
        b.li(n, 200);
        b.label("top");
        b.ld(v, ptr, 0); // pc 2: alternates 1, 2
        b.add(t, v, 10); // first use of the predicted value
        b.add(t, t, t);
        b.xor(Reg::int(5), t, 3);
        // Swap the two memory words so the next load differs.
        b.ld(Reg::int(6), ptr, 8);
        b.st(Reg::int(6), ptr, 0);
        b.st(v, ptr, 8);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();

        let mut results = Vec::new();
        for rec in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
            let s = run(&p, Scheme::StaticRvp { plan: plan.clone() }, rec);
            assert_eq!(s.committed, 2 + 200 * 9 + 1);
            assert_eq!(s.predictions, 200);
            // Value alternates every iteration: every prediction wrong.
            assert!(s.accuracy() < 0.05, "accuracy = {}", s.accuracy());
            results.push((rec, s.cycles));
        }
        // All three recovered; refetch squashed, others reissued.
        let refetch = run(&p, Scheme::StaticRvp { plan: plan.clone() }, Recovery::Refetch);
        assert!(refetch.squashes > 0);
        let selective = run(&p, Scheme::StaticRvp { plan }, Recovery::Selective);
        assert!(selective.reissued_insts > 0);
    }

    #[test]
    fn no_prediction_schemes_agree_on_commit_count() {
        let p = counted_loop(123);
        let a = run(&p, Scheme::NoPredict, Recovery::Refetch);
        let b_ = run(&p, Scheme::NoPredict, Recovery::Reissue);
        let c = run(&p, Scheme::NoPredict, Recovery::Selective);
        assert_eq!(a.committed, b_.committed);
        assert_eq!(b_.committed, c.committed);
        // Without prediction the recovery scheme is irrelevant.
        assert_eq!(a.cycles, c.cycles);
    }

    #[test]
    fn max_insts_caps_the_run() {
        let p = counted_loop(1_000_000);
        let s = Simulator::new(UarchConfig::table1(), Scheme::NoPredict, Recovery::Selective)
            .run(&p, 5_000)
            .unwrap();
        assert_eq!(s.committed, 5_000);
    }

    #[test]
    fn wide_machine_is_at_least_as_fast() {
        let mut b = ProgramBuilder::new();
        for i in 0..8u8 {
            b.li(Reg::int(i + 1), 0);
        }
        for _ in 0..100 {
            for i in 0..8u8 {
                b.addi(Reg::int(i + 1), Reg::int(i + 1), 1);
            }
        }
        b.halt();
        let p = b.build().unwrap();
        let narrow = Simulator::new(UarchConfig::table1(), Scheme::NoPredict, Recovery::Selective)
            .run(&p, 1 << 20)
            .unwrap();
        let wide = Simulator::new(UarchConfig::wide16(), Scheme::NoPredict, Recovery::Selective)
            .run(&p, 1 << 20)
            .unwrap();
        assert!(wide.ipc() >= narrow.ipc() * 0.99);
    }

    #[test]
    fn reissue_recovery_inflates_queue_occupancy() {
        // The paper's Figure 4 mechanism: reissue keeps speculative work
        // in the queues, selective holds only dependents.
        let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[5]);
        b.li(ptr, 0x1000);
        b.li(n, 400);
        b.label("top");
        b.ld(v, ptr, 0);
        for _ in 0..4 {
            b.mul(v, v, 1);
        }
        b.st(v, ptr, 0);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let scheme = || Scheme::drvp(Scope::LoadsOnly, PredictionPlan::new());
        let reissue = run(&p, scheme(), Recovery::Reissue);
        let selective = run(&p, scheme(), Recovery::Selective);
        assert!(reissue.predictions > 0);
        assert!(
            reissue.avg_iq_int_occupancy() > selective.avg_iq_int_occupancy(),
            "reissue {:.2} !> selective {:.2}",
            reissue.avg_iq_int_occupancy(),
            selective.avg_iq_int_occupancy()
        );
    }

    #[test]
    fn read_port_limit_caps_nonload_predictions() {
        // Many simultaneously-predictable ALU ops: with 0 extra ports no
        // non-load prediction can happen; unlimited predicts plenty.
        let n = Reg::int(7);
        let mut b = ProgramBuilder::new();
        for i in 0..6u8 {
            b.li(Reg::int(i + 1), 5);
        }
        b.li(n, 400);
        b.label("top");
        for i in 0..6u8 {
            // Each rewrites its own constant: perfect same-register reuse.
            b.and(Reg::int(i + 1), Reg::int(i + 1), 7);
        }
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let run_ports = |ports: Option<usize>| {
            let cfg = UarchConfig { pred_ports: ports, ..UarchConfig::table1() };
            Simulator::new(
                cfg,
                Scheme::drvp(Scope::AllInsts, PredictionPlan::new()),
                Recovery::Selective,
            )
            .run(&p, 1 << 20)
            .unwrap()
        };
        let unlimited = run_ports(None);
        let zero = run_ports(Some(0));
        let one = run_ports(Some(1));
        assert_eq!(zero.predictions, 0);
        assert!(unlimited.predictions > one.predictions);
        assert!(one.predictions > 0);
        // Architectural behaviour is identical regardless.
        assert_eq!(zero.committed, unlimited.committed);
    }

    #[test]
    fn stride_buffers_go_stale_on_tight_recurrences() {
        // A counter striding by 3 every iteration. Buffers train at
        // writeback, so with many iterations in flight the table lags
        // the front end and the dispatch-time stride prediction is
        // systematically out of date — the "stale entries" failure mode
        // the paper lists as RVP advantage 4 ("No stale values"). On a
        // *constant* sequence the same predictor is near-perfect.
        let (x, n, y) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let build = |stride: i64| {
            let mut b = ProgramBuilder::new();
            b.li(x, 0);
            b.li(n, 500);
            b.label("top");
            b.addi(x, x, stride);
            b.mul(y, x, 7);
            b.subi(n, n, 1);
            b.bnez(n, "top");
            b.halt();
            b.build().unwrap()
        };
        let run_buf = |p: &Program| {
            Simulator::new(
                UarchConfig::table1(),
                Scheme::Buffer {
                    scope: Scope::AllInsts,
                    config: rvp_vpred::BufferConfig::Stride(rvp_vpred::StrideConfig::default()),
                },
                Recovery::Selective,
            )
            .run(p, 1 << 20)
            .unwrap()
        };
        let striding = run_buf(&build(3));
        let constant = run_buf(&build(0));
        assert!(striding.predictions > 100);
        assert!(
            striding.accuracy() < 0.3,
            "stale stride accuracy unexpectedly high: {}",
            striding.accuracy()
        );
        // (The loop counter itself still strides and stays stale, so
        // constant-sequence accuracy is bounded by its share of the
        // predictions rather than reaching 100%.)
        assert!(constant.accuracy() > 0.6, "constant-sequence accuracy: {}", constant.accuracy());
    }

    #[test]
    fn refetch_squash_replays_branches_correctly() {
        // A mispredicting static-RVP load right before a data-dependent
        // branch: refetch recovery squashes and replays the branch region
        // repeatedly; committed counts and values must stay exact.
        let (ptr, v, n, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[1, 2]);
        b.li(ptr, 0x1000);
        b.li(n, 150);
        b.label("top");
        b.ld(v, ptr, 0); // pc 2: alternates -> always mispredicts
        b.and(t, v, 1); // first use
        b.beqz(t, "even"); // data-dependent branch right after the use
        b.addi(ptr, ptr, 0);
        b.label("even");
        b.ld(Reg::int(5), ptr, 8);
        b.st(Reg::int(5), ptr, 0);
        b.st(v, ptr, 8);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let plan: PredictionPlan = [(2usize, ReuseKind::SameReg)].into_iter().collect();
        let base = run(&p, Scheme::NoPredict, Recovery::Refetch);
        let srvp = run(&p, Scheme::StaticRvp { plan }, Recovery::Refetch);
        assert_eq!(base.committed, srvp.committed);
        assert!(srvp.squashes > 100, "squashes = {}", srvp.squashes);
    }

    #[test]
    fn tiny_queues_still_drain() {
        // A 2-entry IQ forces maximal structural stalls; the model must
        // still make progress and commit everything.
        let cfg = UarchConfig { iq_int: 2, iq_fp: 2, rob_size: 4, ..UarchConfig::table1() };
        let p = counted_loop(100);
        let s =
            Simulator::new(cfg, Scheme::NoPredict, Recovery::Selective).run(&p, 1 << 20).unwrap();
        assert_eq!(s.committed, 202);
    }

    #[test]
    fn rename_register_exhaustion_throttles_but_completes() {
        let cfg = UarchConfig { rename_regs: 2, ..UarchConfig::table1() };
        let p = counted_loop(100);
        let slow =
            Simulator::new(cfg, Scheme::NoPredict, Recovery::Selective).run(&p, 1 << 20).unwrap();
        let fast = run(&p, Scheme::NoPredict, Recovery::Selective);
        assert_eq!(slow.committed, fast.committed);
        assert!(slow.cycles >= fast.cycles);
    }

    #[test]
    fn hardware_correlation_finds_other_register_reuse_unaided() {
        // The dead-register pattern: `ld w` reloads the value the dead
        // register `d` holds. Plain dRVP cannot see it (no same-register
        // reuse); the Jourdan-style hardware correlation learns the
        // source register with zero compiler involvement.
        let (p_, d, w, n) = (Reg::int(1), Reg::int(5), Reg::int(3), Reg::int(6));
        let values: Vec<u64> = (0..64u64).map(|i| i * 17 + 3).collect();
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &values);
        b.li(p_, 0x1000);
        b.li(n, 400);
        b.label("loop");
        b.ld(d, p_, 0); // fresh value
        b.st(d, p_, 0x1000); // spilled; d dead after
        b.ld(w, p_, 0x1000); // pc 4: reloads d's value
        b.mul(w, w, 3);
        b.addi(p_, p_, 8);
        b.and(p_, p_, 0x11f8);
        b.subi(n, n, 1);
        b.bnez(n, "loop");
        b.halt();
        let prog = b.build().unwrap();
        let drvp =
            run(&prog, Scheme::drvp(Scope::AllInsts, PredictionPlan::new()), Recovery::Selective);
        let hw = run(
            &prog,
            Scheme::HwCorrelation {
                scope: Scope::AllInsts,
                config: rvp_vpred::CorrelationConfig::default(),
            },
            Recovery::Selective,
        );
        assert_eq!(drvp.committed, hw.committed);
        assert!(
            hw.correct_predictions > drvp.correct_predictions + 200,
            "hw {} vs drvp {}",
            hw.correct_predictions,
            drvp.correct_predictions
        );
        assert!(hw.accuracy() > 0.9, "accuracy {}", hw.accuracy());
    }

    #[test]
    fn gabbay_predictor_runs() {
        let (ptr, v, n) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new();
        b.data(0x1000, &[5]);
        b.li(ptr, 0x1000);
        b.li(n, 300);
        b.label("top");
        b.ld(v, ptr, 0);
        b.subi(n, n, 1);
        b.bnez(n, "top");
        b.halt();
        let p = b.build().unwrap();
        let s = run(&p, Scheme::Gabbay { scope: Scope::AllInsts }, Recovery::Selective);
        // The loop counter writer (never reusing) and the constant load
        // (always reusing) share... different registers here, so the load
        // becomes predictable.
        assert!(s.predictions > 0);
    }

    #[test]
    fn cpi_stack_sums_to_cycles() {
        let p = counted_loop(500);
        for rec in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
            let s = run(&p, Scheme::drvp(Scope::AllInsts, PredictionPlan::new()), rec);
            assert_eq!(s.cpi.total(), s.cycles, "{rec:?}: {:?}", s.cpi);
        }
    }

    #[test]
    fn obs_report_present_only_when_enabled() {
        let p = counted_loop(200);
        let off = run(&p, Scheme::NoPredict, Recovery::Selective);
        assert!(off.obs.is_none());

        let on = Simulator::new(UarchConfig::table1(), Scheme::NoPredict, Recovery::Selective)
            .with_obs(ObsConfig { sample_interval: 64, ..ObsConfig::standard() })
            .run(&p, 1_000_000)
            .unwrap();
        let obs = on.obs.as_ref().expect("obs report");
        assert_eq!(obs.sample_interval, 64);
        let window_cycles: u64 = obs.samples.iter().map(|w| w.cycles).sum();
        let window_commits: u64 = obs.samples.iter().map(|w| w.committed).sum();
        assert_eq!(window_cycles, on.cycles);
        assert_eq!(window_commits, on.committed);
        // Instrumentation must not change the timing model.
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.committed, off.committed);
    }
}
