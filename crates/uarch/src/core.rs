//! The per-run pipeline state and the cycle loop.
//!
//! [`Simulator`] holds the per-run predictor and hierarchy state;
//! [`Core`] is the transient pipeline (ROB, rename map, fetch state)
//! driven one cycle at a time over a [`CommittedSource`] stream. The
//! stage implementations live in sibling modules: `frontend` (fetch,
//! dispatch, value prediction), `backend` (issue, completion, commit)
//! and `recovery` (taint tracking, reissue/refetch recovery).
//!
//! Besides the architectural structures, `Core` maintains a set of
//! incrementally-updated summaries of the ROB (queue occupancy, rename
//! pressure, a pending-issue bitset, a store list and a completion
//! heap) so the per-cycle stages touch only the entries they act on
//! instead of scanning the whole window. Debug builds continuously
//! cross-check every summary against a full scan, so the fast paths
//! cannot silently diverge from the architectural state.

use rvp_bpred::BranchUnit;
use rvp_emu::Committed;
use rvp_isa::{Program, Reg, RegClass, NUM_REGS};
use rvp_mem::Hierarchy;
use rvp_obs::{CounterSnapshot, CpiBucket, ObsConfig, ObsReport, PcTable, Sampler};

use crate::config::UarchConfig;
use crate::meta::PcMeta;
use crate::recovery::RobSet;
use crate::ring::BoundedDeque;
use crate::scheme::{Recovery, Scheme};
use crate::source::{CommittedSource, EmuSource};
use crate::stats::{SimError, SimStats};
use crate::wheel::CompletionWheel;

/// Cycles without a commit before the deadlock watchdog trips.
const WATCHDOG_CYCLES: u64 = 500_000;

/// Cancel polls happen on cycles where `now & CANCEL_CHECK_MASK == 0` —
/// every 8192 cycles. Wide enough that the poll (one atomic load, plus
/// a clock read only when a deadline is armed) vanishes against the
/// per-cycle pipeline work; narrow enough that a fired token squashes a
/// run within well under a millisecond of wall time.
const CANCEL_CHECK_MASK: u64 = 0x1FFF;

/// Recovery-burst spans emitted per run before only counting; keeps a
/// pathological run from flooding the span ring with sub-µs spans.
const MAX_BURST_SPANS: u64 = 64;

/// Wall-clock span instrumentation for one sim run: a `sim.run` parent
/// with `sim.warmup` / `sim.steady` phase children, the first
/// [`MAX_BURST_SPANS`] recovery bursts as `sim.recovery.burst` spans
/// (every burst is still counted), and a `sim.finalize` child around
/// stats finalization. Constructed only when the span tracer is armed,
/// so the cycle loop's disarmed cost is one `Option` test on a local —
/// it never touches the tracer's atomics.
struct SimTracer {
    run: rvp_obs::SpanGuard,
    run_id: u64,
    clock: rvp_obs::Clock,
    run_start_us: u64,
    /// Committed-instruction boundary between warmup and steady state.
    warmup_insts: u64,
    warmup_end_us: Option<u64>,
    /// Open recovery burst: (start µs — 0 when past the span budget,
    /// start cycle).
    burst_open: Option<(u64, u64)>,
    bursts: u64,
    burst_cycles: u64,
}

impl SimTracer {
    /// The pipeline-warmup boundary: the first 10% of the budget,
    /// capped at 10K committed instructions.
    fn warmup_insts(max_insts: u64) -> u64 {
        (max_insts / 10).clamp(1, 10_000)
    }

    fn new(max_insts: u64) -> SimTracer {
        let run = rvp_obs::span!("sim.run", { budget: max_insts });
        let clock = rvp_obs::span::clock();
        let run_start_us = clock.now_us();
        SimTracer {
            run_id: run.id(),
            run,
            clock,
            run_start_us,
            warmup_insts: SimTracer::warmup_insts(max_insts),
            warmup_end_us: None,
            burst_open: None,
            bursts: 0,
            burst_cycles: 0,
        }
    }

    /// Per-cycle hook (armed runs only): tracks the warmup boundary and
    /// recovery-burst extents.
    fn on_cycle(&mut self, committed: u64, bucket: CpiBucket, cycle: u64) {
        if self.warmup_end_us.is_none() && committed >= self.warmup_insts {
            self.warmup_end_us = Some(self.clock.now_us());
        }
        let in_recovery = matches!(bucket, CpiBucket::Reissue | CpiBucket::ValueRefetch);
        match (self.burst_open, in_recovery) {
            (None, true) => {
                let start_us = if self.bursts < MAX_BURST_SPANS { self.clock.now_us() } else { 0 };
                self.burst_open = Some((start_us, cycle));
            }
            (Some((start_us, start_cycle)), false) => {
                self.bursts += 1;
                self.burst_cycles += cycle - start_cycle;
                if start_us > 0 {
                    rvp_obs::span::record(
                        "sim.recovery.burst",
                        self.run_id,
                        start_us,
                        self.clock.now_us(),
                        vec![("cycles".into(), (cycle - start_cycle).into())],
                    );
                }
                self.burst_open = None;
            }
            _ => {}
        }
    }

    /// Emits the phase spans; call when the cycle loop ends.
    fn finish(mut self, cycle: u64, committed: u64) {
        if let Some((start_us, start_cycle)) = self.burst_open.take() {
            self.bursts += 1;
            self.burst_cycles += cycle - start_cycle;
            if start_us > 0 {
                rvp_obs::span::record(
                    "sim.recovery.burst",
                    self.run_id,
                    start_us,
                    self.clock.now_us(),
                    vec![("cycles".into(), (cycle - start_cycle).into())],
                );
            }
        }
        let end_us = self.clock.now_us();
        let warmup_end = self.warmup_end_us.unwrap_or(end_us);
        rvp_obs::span::record(
            "sim.warmup",
            self.run_id,
            self.run_start_us,
            warmup_end,
            vec![("insts".into(), self.warmup_insts.min(committed).into())],
        );
        rvp_obs::span::record(
            "sim.steady",
            self.run_id,
            warmup_end,
            end_us,
            vec![
                ("recovery_bursts".into(), self.bursts.into()),
                ("recovery_cycles".into(), self.burst_cycles.into()),
            ],
        );
        let mut run = self.run;
        run.add_field("cycles", cycle);
        run.add_field("committed", committed);
        // `run` drops here and records the sim.run parent itself.
    }
}

/// How often debug builds cross-check the incremental ROB summaries
/// against a full scan.
#[cfg(debug_assertions)]
const VALIDATE_EVERY: u64 = 64;

/// One in-flight instruction (a reorder-buffer entry).
/// Sentinel seq for "no producer / not set" in the compact `Entry`
/// fields below (a real seq never reaches `u64::MAX`).
pub(crate) const NO_SEQ: u64 = u64::MAX;
/// Sentinel cycle for "no writeback scheduled".
pub(crate) const NO_CYCLE: u64 = u64::MAX;

#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) rec: Committed,
    pub(crate) queue: RegClass,
    pub(crate) is_store: bool,
    pub(crate) is_load: bool,
    /// Base execution latency (precomputed; cache penalties are added
    /// at issue).
    pub(crate) lat: u64,
    /// Producer seqs for the register sources ([`NO_SEQ`] = none).
    pub(crate) deps: [u64; 2],
    pub(crate) in_iq: bool,
    pub(crate) issued: bool,
    /// Writeback cycle ([`NO_CYCLE`] = not scheduled).
    pub(crate) complete_at: u64,
    pub(crate) done: bool,
    /// Earliest cycle this entry may (re)issue.
    pub(crate) earliest_issue: u64,
    /// Unverified predicted producers this entry's current result
    /// depends on.
    pub(crate) taint: RobSet,
    // --- value prediction ---
    pub(crate) predicted: bool,
    /// The value the scheme would predict (tracked for all in-scope
    /// instructions so confidence counters can train on it).
    pub(crate) pred_value: Option<u64>,
    pub(crate) pred_correct: bool,
    /// Producer whose completion makes the predicted value readable
    /// (the *old* register mapping); [`NO_SEQ`] = readable immediately.
    pub(crate) pred_dep: u64,
    pub(crate) verified: bool,
    /// Extra memory-hierarchy latency (cache/TLB misses) charged at
    /// issue; nonzero marks this entry memory-bound for cycle
    /// accounting.
    pub(crate) mem_extra: u64,
    /// This entry was invalidated by a value mispredict and is
    /// re-executing (reissue/selective recovery).
    pub(crate) reissued: bool,
    /// Seq of the first instruction that read this entry's predicted
    /// value ([`NO_SEQ`] = unread).
    pub(crate) first_use: u64,
    /// For the hardware-correlation scheme: a register observed (at
    /// rename) to hold the value this instruction produced.
    pub(crate) corr_observed: Option<Reg>,
    // --- branches ---
    /// This branch was mispredicted at fetch and stalled the front end.
    pub(crate) stalled_fetch: bool,
    // --- rollback bookkeeping for refetch squashes ---
    /// Meaningful only when `had_last_value`.
    pub(crate) prev_last_value: u64,
    pub(crate) had_last_value: bool,
}

/// A fetched record waiting to enter the ROB.
#[derive(Debug)]
pub(crate) struct Fetched {
    pub(crate) rec: Committed,
    /// Cycle the record clears the front end and may dispatch.
    pub(crate) arrival: u64,
    /// This branch was mispredicted at fetch and stalled the front end.
    pub(crate) stalled: bool,
}

/// The out-of-order timing simulator.
///
/// Create one per run; [`Simulator::run`] drives a program to completion
/// (or an instruction budget) and returns [`SimStats`].
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: UarchConfig,
    pub(crate) scheme: Scheme,
    pub(crate) recovery: Recovery,
    /// Cached `scheme.predictor.wants_value_training()` — the flag is a
    /// per-instance constant, and the writeback loop checks it once per
    /// completed instruction.
    pub(crate) value_training: bool,
    // predictor state (the value predictor lives inside `scheme`)
    pub(crate) bpred: BranchUnit,
    pub(crate) mem: Hierarchy,
    pub(crate) obs: ObsConfig,
    /// Cooperative cancellation handle; polled every
    /// [`CANCEL_CHECK_MASK`]` + 1` cycles when present. `None` costs one
    /// predictable branch per cycle.
    pub(crate) cancel: Option<rvp_obs::CancelToken>,
}

impl Simulator {
    /// Builds a simulator for the given machine, prediction scheme and
    /// recovery model.
    ///
    /// # Panics
    ///
    /// Panics if `config.rob_size` exceeds the 256 entries the taint
    /// bitset representation supports, or if `config.bpred_spec` names
    /// an unknown branch predictor (validate specs with
    /// [`rvp_bpred::new_branch_predictor`] before building a simulator).
    pub fn new(config: UarchConfig, scheme: Scheme, recovery: Recovery) -> Simulator {
        assert!(
            config.rob_size <= RobSet::CAPACITY,
            "rob_size {} exceeds the supported maximum of {}",
            config.rob_size,
            RobSet::CAPACITY,
        );
        let bpred = match &config.bpred_spec {
            Some(spec) => {
                let dir = rvp_bpred::new_branch_predictor(spec)
                    .unwrap_or_else(|e| panic!("invalid bpred_spec: {e}"));
                BranchUnit::with_direction(config.bpred, dir)
            }
            None => BranchUnit::new(config.bpred),
        };
        let value_training = scheme.predictor.as_ref().is_some_and(|p| p.wants_value_training());
        Simulator {
            bpred,
            mem: Hierarchy::new(config.mem),
            obs: ObsConfig::off(),
            config,
            scheme,
            recovery,
            value_training,
            cancel: None,
        }
    }

    /// Enables optional instrumentation (time-series sampling, per-PC
    /// telemetry) for subsequent runs. The cycle-accounting CPI stack
    /// is always on.
    pub fn with_obs(mut self, obs: ObsConfig) -> Simulator {
        self.obs = obs;
        self
    }

    /// Attaches a cooperative [`rvp_obs::CancelToken`]. The cycle loop
    /// polls it on an amortized schedule (every few thousand cycles), so
    /// runs fail fast with [`SimError::Cancelled`] once the token fires
    /// without slowing the steady-state loop.
    pub fn with_cancel(mut self, cancel: rvp_obs::CancelToken) -> Simulator {
        self.cancel = Some(cancel);
        self
    }

    /// Runs `program` for at most `max_insts` committed instructions,
    /// live-emulating the committed stream ([`EmuSource`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Emu`] for malformed programs and
    /// [`SimError::Deadlock`] if the pipeline stops making progress (a
    /// model invariant violation).
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<SimStats, SimError> {
        let mut source = EmuSource::new(program);
        self.run_with_source(program, &mut source, max_insts)
    }

    /// Runs `program` for at most `max_insts` committed instructions,
    /// consuming the committed stream from `source` instead of a live
    /// emulator. All sources produce bit-identical [`SimStats`]; see
    /// [`crate::source`] for the stream contract.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`]; source-level failures (emulation errors,
    /// unrecoverable trace corruption) surface as [`SimError::Emu`].
    pub fn run_with_source<S: CommittedSource + ?Sized>(
        &mut self,
        program: &Program,
        source: &mut S,
        max_insts: u64,
    ) -> Result<SimStats, SimError> {
        Core::new(self, program, source, max_insts).run()
    }
}

/// Why the front end is (re)filling an empty machine — the stall cause
/// empty-machine cycles are charged to. Set when a stall begins,
/// cleared at the next commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Redirect {
    None,
    Branch,
    ICache,
    ValueRefetch,
}

/// The running counter totals the sampler windows are deltas of.
fn snapshot(stats: &SimStats) -> CounterSnapshot {
    CounterSnapshot {
        committed: stats.committed,
        predictions: stats.predictions,
        correct_predictions: stats.correct_predictions,
        iq_int_occupancy_sum: stats.iq_int_occupancy_sum,
        iq_fp_occupancy_sum: stats.iq_fp_occupancy_sum,
    }
}

/// Per-run pipeline state.
pub(crate) struct Core<'s, S: CommittedSource + ?Sized> {
    pub(crate) sim: &'s mut Simulator,
    /// Dense per-PC static metadata (see [`crate::meta`]); everything
    /// fetch/dispatch need without re-deriving it from [`rvp_isa::Inst`].
    pub(crate) meta: Vec<PcMeta>,
    pub(crate) source: &'s mut S,
    pub(crate) max_insts: u64,
    /// Distinct records consumed so far (== the seq after the youngest).
    pub(crate) pulled: u64,
    /// Rewound records the source still owes us (refetch recovery).
    pub(crate) replay_pending: u64,
    pub(crate) trace_done: bool,
    /// Fetched records waiting to enter the ROB, bounded by
    /// `config.fetch_buffer` (fetch backpressure).
    pub(crate) frontend: BoundedDeque<Fetched>,
    pub(crate) rob: BoundedDeque<Entry>,
    /// Seq of the youngest in-flight writer of each register.
    pub(crate) last_writer: [Option<u64>; NUM_REGS],
    /// Program-order register values at the dispatch point.
    pub(crate) shadow: [u64; NUM_REGS],
    /// Last committed-path value produced by each static instruction.
    pub(crate) last_value: Vec<Option<u64>>,
    /// Seq of the most recently dispatched instance of each static
    /// instruction (the old mapping of a last-value-exclusive register).
    pub(crate) last_instance: Vec<Option<u64>>,
    pub(crate) now: u64,
    pub(crate) fetch_resume_at: u64,
    /// Branch seq the fetcher is stalled on, if any.
    pub(crate) stalled_on: Option<u64>,
    /// Last I-cache line touched by fetch.
    pub(crate) last_line: u64,
    pub(crate) halted_fetch: bool,
    pub(crate) stats: SimStats,
    pub(crate) last_commit_cycle: u64,
    // --- incremental ROB summaries (cross-checked in debug builds) ---
    /// Occupied queue slots per class, indexed by `RegClass as usize`.
    pub(crate) iq_occupancy: [usize; 2],
    /// In-flight destination writers per class (rename pressure).
    pub(crate) writers: [usize; 2],
    /// Entries holding a queue slot after issuing (`in_iq && issued`).
    pub(crate) held_issued: usize,
    /// Seqs of the entries counted by `held_issued` (issued but still
    /// holding a queue slot), so the per-cycle release pass visits only
    /// holders instead of scanning the ROB.
    pub(crate) held_slots: RobSet,
    /// Entries with a non-empty taint set.
    pub(crate) tainted: usize,
    /// Dispatched-but-not-issued entries, by ROB slot, split per
    /// instruction queue (indexed by `RegClass as usize`) so the issue
    /// stage walks each class against its own unit budget.
    pub(crate) to_issue: [RobSet; 2],
    /// Pending entries proven *stably* blocked (an unavailable source
    /// producer or an incomplete older same-block store). The issue walk
    /// skips them without a visit; they are woken — removed from this
    /// set — when their recorded blocker completes (see [`Core::waiters`]),
    /// and the bit is cleared whenever a seq (re)enters the pending set.
    /// Wake-ups are conservative: a stale waiter bit merely causes a
    /// re-check, never a wrong issue.
    pub(crate) issue_blocked: [RobSet; 2],
    /// `waiters[s % 256]`: pending entries whose recorded blocker is the
    /// instruction with seq `s` — the wakeup list consulted when `s`
    /// completes.
    pub(crate) waiters: Box<[RobSet]>,
    /// `taint_members[s % 256]`: entries whose taint set contains the
    /// predicted producer with seq `s` — the reverse of the per-entry
    /// taint sets, so verification touches only actual dependents
    /// instead of scanning the ROB. May carry stale bits (squashed or
    /// re-issued entries); consumers re-validate with `taint.remove`,
    /// so a stale bit costs a visit, never a wrong transition.
    pub(crate) taint_members: Box<[RobSet]>,
    /// The previous issue pass issued nothing and skipped nothing for a
    /// transient (unit/timing) reason, and no event since then can have
    /// made a pending entry ready — the walk would be a no-op, so it is
    /// skipped. Cleared by dispatch, completion processing, squash and
    /// invalidation (the only sources of readiness transitions).
    pub(crate) issue_idle: bool,
    /// Seqs of in-flight stores, oldest first (memory disambiguation);
    /// a subset of the ROB, so `rob_size` bounds it.
    pub(crate) stores: BoundedDeque<u64>,
    /// Scheduled writebacks on a timing wheel; lazily invalidated, so
    /// entries are re-validated against the ROB when drained.
    pub(crate) completions: CompletionWheel,
    /// Reusable buffer for the squash → rewind hand-off.
    pub(crate) squash_scratch: Vec<Committed>,
    // --- observability ---
    /// Most recent front-end redirect cause (cycle accounting).
    pub(crate) redirect: Redirect,
    /// Dispatch was blocked by a full ROB/IQ/rename file this cycle.
    pub(crate) dispatch_blocked: bool,
    /// Optional windowed time-series sampler.
    pub(crate) sampler: Option<Sampler>,
    /// Optional per-static-instruction outcome table.
    pub(crate) pc_table: Option<PcTable>,
}

impl<'s, S: CommittedSource + ?Sized> Core<'s, S> {
    pub(crate) fn new(
        sim: &'s mut Simulator,
        program: &Program,
        source: &'s mut S,
        max_insts: u64,
    ) -> Core<'s, S> {
        let mut shadow = [0u64; NUM_REGS];
        shadow[rvp_isa::analysis::abi::SP.index()] = rvp_emu::STACK_TOP;
        let sampler = (sim.obs.sample_interval > 0)
            .then(|| Sampler::new(sim.obs.sample_interval, sim.obs.ring_capacity));
        let pc_table = sim.obs.track_pc.then(|| PcTable::new(program.len()));
        let meta = crate::meta::build(program, &sim.scheme, &sim.config);
        Core {
            sampler,
            pc_table,
            meta,
            source,
            max_insts,
            pulled: 0,
            replay_pending: 0,
            trace_done: false,
            frontend: BoundedDeque::with_bound(sim.config.fetch_buffer),
            rob: BoundedDeque::with_bound(sim.config.rob_size),
            last_writer: [None; NUM_REGS],
            shadow,
            last_value: vec![None; program.len()],
            last_instance: vec![None; program.len()],
            now: 0,
            fetch_resume_at: 0,
            stalled_on: None,
            last_line: u64::MAX,
            halted_fetch: false,
            stats: SimStats::default(),
            last_commit_cycle: 0,
            iq_occupancy: [0; 2],
            writers: [0; 2],
            held_issued: 0,
            held_slots: RobSet::EMPTY,
            tainted: 0,
            to_issue: [RobSet::EMPTY; 2],
            issue_blocked: [RobSet::EMPTY; 2],
            waiters: vec![RobSet::EMPTY; RobSet::CAPACITY].into_boxed_slice(),
            taint_members: vec![RobSet::EMPTY; RobSet::CAPACITY].into_boxed_slice(),
            issue_idle: false,
            stores: BoundedDeque::with_bound(sim.config.rob_size),
            completions: CompletionWheel::new(),
            squash_scratch: Vec::with_capacity(sim.config.rob_size),
            redirect: Redirect::None,
            dispatch_blocked: false,
            sim,
        }
    }

    pub(crate) fn run(mut self) -> Result<SimStats, SimError> {
        // Armed-ness is sampled once per run: the per-cycle tracing cost
        // is a branch on this local `Option`, and a disarmed run never
        // touches the tracer again.
        let mut tracer = rvp_obs::span::armed().then(|| SimTracer::new(self.max_insts));
        loop {
            let committed_before = self.stats.committed;
            self.dispatch_blocked = false;
            self.process_completions();
            self.commit();
            self.issue();
            self.dispatch();
            self.fetch()?;
            self.stats.iq_int_occupancy_sum += self.iq_occupancy[RegClass::Int as usize] as u64;
            self.stats.iq_fp_occupancy_sum += self.iq_occupancy[RegClass::Fp as usize] as u64;
            #[cfg(debug_assertions)]
            if self.now.is_multiple_of(VALIDATE_EVERY) {
                self.validate_summaries();
            }
            if self.finished() {
                break;
            }
            if self.now - self.last_commit_cycle > WATCHDOG_CYCLES {
                return Err(SimError::Deadlock {
                    cycle: self.now,
                    committed: self.stats.committed,
                });
            }
            if let Some(token) = &self.sim.cancel {
                if self.now & CANCEL_CHECK_MASK == 0 {
                    if let Some(reason) = token.poll() {
                        let cycle = self.now;
                        let committed = self.stats.committed;
                        let _squash = rvp_obs::span::enter_with("cancel.squash", || {
                            vec![
                                (std::borrow::Cow::Borrowed("reason"), reason.as_str().into()),
                                (std::borrow::Cow::Borrowed("cycle"), cycle.into()),
                                (std::borrow::Cow::Borrowed("committed"), committed.into()),
                            ]
                        });
                        return Err(SimError::Cancelled { cycle, committed, reason });
                    }
                }
            }
            // Cycle accounting: charge this elapsed cycle to exactly one
            // bucket (the final, non-elapsing iteration is never
            // charged, so the stack sums to `cycles` by construction).
            let committed_now = self.stats.committed - committed_before;
            if committed_now > 0 {
                self.redirect = Redirect::None;
            }
            let bucket = self.classify_cycle(committed_now);
            self.stats.cpi.add(bucket, 1);
            if let Some(tracer) = &mut tracer {
                tracer.on_cycle(self.stats.committed, bucket, self.now);
            }
            if let Some(sampler) = &mut self.sampler {
                sampler.tick(self.now, snapshot(&self.stats));
            }
            self.now += 1;
        }
        self.stats.cycles = self.now.max(1);
        {
            let _finalize = rvp_obs::span::enter("sim.finalize");
            // The degenerate empty run elapses one nominal cycle.
            let accounted = self.stats.cpi.total();
            if accounted < self.stats.cycles {
                self.stats.cpi.add(CpiBucket::Base, self.stats.cycles - accounted);
            }
            self.stats.branch = *self.sim.bpred.stats();
            self.stats.mem = *self.sim.mem.stats();
            self.finish_obs();
        }
        if let Some(tracer) = tracer {
            tracer.finish(self.now, self.stats.committed);
        }
        Ok(self.stats)
    }

    /// Folds the optional instrumentation into the final stats.
    fn finish_obs(&mut self) {
        if self.sampler.is_none() && self.pc_table.is_none() {
            return;
        }
        let mut report = ObsReport::default();
        if let Some(mut sampler) = self.sampler.take() {
            report.sample_interval = sampler.interval();
            sampler.finish(self.now, snapshot(&self.stats));
            let (samples, dropped) = sampler.into_windows();
            report.samples = samples;
            report.dropped_windows = dropped;
        }
        if let Some(table) = self.pc_table.take() {
            report.top_costly = table.top_by_costly(self.sim.obs.top_k);
            report.top_correct = table.top_by_correct(self.sim.obs.top_k);
        }
        self.stats.obs = Some(report);
    }

    /// The cycle-attribution priority ladder (documented in DESIGN.md).
    fn classify_cycle(&self, committed_now: u64) -> CpiBucket {
        if committed_now > 0 {
            return CpiBucket::Base;
        }
        if let Some(head) = self.rob.front() {
            if head.reissued && !head.done {
                return CpiBucket::Reissue;
            }
            if !head.done && head.issued && head.mem_extra > 0 {
                return CpiBucket::DCache;
            }
            if self.dispatch_blocked {
                return CpiBucket::QueueFull;
            }
            return CpiBucket::Base;
        }
        // Empty machine: charge the front end by redirect cause.
        if self.stalled_on.is_some() {
            return CpiBucket::BranchMispredict;
        }
        match self.redirect {
            Redirect::ValueRefetch => CpiBucket::ValueRefetch,
            Redirect::Branch => CpiBucket::BranchMispredict,
            Redirect::ICache => CpiBucket::ICache,
            Redirect::None => CpiBucket::FetchStall,
        }
    }

    fn finished(&mut self) -> bool {
        self.rob.is_empty()
            && self.frontend.is_empty()
            && self.replay_pending == 0
            && (self.trace_done || self.pulled >= self.max_insts || self.halted_fetch)
    }

    /// Bookkeeping for one record leaving the source: fresh records
    /// raise the high-water mark, rewound ones repay the replay debt.
    pub(crate) fn note_consumed(&mut self, seq: u64) {
        if seq >= self.pulled {
            debug_assert_eq!(seq, self.pulled, "committed stream must be consecutive");
            self.pulled = seq + 1;
        } else {
            debug_assert!(self.replay_pending > 0, "unexpected replayed record");
            self.replay_pending -= 1;
        }
    }

    /// Whether fetch may pull another record without exceeding the
    /// instruction budget (rewound records are always replayable).
    pub(crate) fn may_pull(&self) -> bool {
        !self.trace_done && (self.pulled < self.max_insts || self.replay_pending > 0)
    }

    // ------------------------------------------------------------------
    // ROB helpers
    // ------------------------------------------------------------------

    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.rec.seq;
        if seq < head {
            return None;
        }
        let i = (seq - head) as usize;
        (i < self.rob.len()).then_some(i)
    }

    /// Cross-checks every incremental ROB summary against a full scan.
    /// Debug builds only; this is the proof that the scan-free fast
    /// paths cannot drift from the architectural state.
    #[cfg(debug_assertions)]
    fn validate_summaries(&self) {
        for class in [RegClass::Int, RegClass::Fp] {
            let iq = self.rob.iter().filter(|e| e.in_iq && e.queue == class).count();
            assert_eq!(self.iq_occupancy[class as usize], iq, "iq occupancy drift ({class})");
            let writers =
                self.rob.iter().filter(|e| e.rec.dst.is_some_and(|d| d.class() == class)).count();
            assert_eq!(self.writers[class as usize], writers, "writer count drift ({class})");
        }
        let held = self.rob.iter().filter(|e| e.in_iq && e.issued).count();
        assert_eq!(self.held_issued, held, "held-slot count drift");
        for e in &self.rob {
            assert_eq!(
                self.held_slots.contains(e.rec.seq),
                e.in_iq && e.issued,
                "held-slot bitset drift at seq {}",
                e.rec.seq
            );
        }
        let tainted = self.rob.iter().filter(|e| !e.taint.is_empty()).count();
        assert_eq!(self.tainted, tainted, "tainted count drift");
        // Reverse taint index: every member of a live taint set must be
        // able to find the tainted entry back (stale extra bits are
        // allowed; missing bits would leak a taint forever).
        if let Some(head) = self.rob.front() {
            let (head_seq, len) = (head.rec.seq, self.rob.len());
            for e in &self.rob {
                let seq = e.rec.seq;
                e.taint.for_each_in_window(head_seq, len, &mut |s| {
                    assert!(
                        self.taint_members[(s % RobSet::CAPACITY as u64) as usize].contains(seq),
                        "taint member {s} of seq {seq} missing from the reverse index"
                    );
                    true
                });
            }
        }
        for class in [RegClass::Int, RegClass::Fp] {
            let unissued = self.rob.iter().filter(|e| !e.issued && e.queue == class).count();
            assert_eq!(
                self.to_issue[class as usize].len(),
                unissued,
                "pending-issue bitset drift ({class})"
            );
        }
        // The store list must equal the in-order store subsequence of
        // the ROB; compare incrementally instead of materializing both
        // sides (the validator itself must not allocate).
        let mut store_list = self.stores.iter();
        for (i, e) in self.rob.iter().enumerate() {
            assert_eq!(
                self.to_issue[e.queue as usize].contains(e.rec.seq),
                !e.issued,
                "pending-issue bit drift at seq {}",
                e.rec.seq
            );
            assert!(e.issued || e.in_iq, "unissued entries hold a queue slot");
            if e.is_store {
                assert_eq!(store_list.next(), Some(&e.rec.seq), "store list drift");
            }
            // A blocked-marked pending entry must really be blocked: a
            // bit that survived a wake-up it should have received would
            // stall this entry forever.
            if !e.issued && self.issue_blocked[e.queue as usize].contains(e.rec.seq) {
                assert!(
                    self.is_stably_blocked(i),
                    "blocked bit on a ready entry at seq {}",
                    e.rec.seq
                );
            }
        }
        assert_eq!(store_list.next(), None, "store list has stale entries");
    }

    /// Whether ROB entry `i` is dep- or store-blocked right now — the
    /// condition its `issue_blocked` bit claims. Debug builds only.
    #[cfg(debug_assertions)]
    fn is_stably_blocked(&self, i: usize) -> bool {
        let e = &self.rob[i];
        for dep in e.deps {
            if dep != NO_SEQ && self.dep_avail(dep).is_err() {
                return true;
            }
        }
        if e.is_load {
            let head_seq = self.rob.front().expect("non-empty").rec.seq;
            let addr_block = e.rec.eff_addr.map(|a| a & !7);
            for &sseq in &self.stores {
                if sseq >= e.rec.seq {
                    break;
                }
                let s = &self.rob[(sseq - head_seq) as usize];
                if s.rec.eff_addr.map(|a| a & !7) == addr_block && !s.done {
                    return true;
                }
            }
        }
        false
    }
}
