//! The per-run pipeline state and the cycle loop.
//!
//! [`Simulator`] holds the per-run predictor and hierarchy state;
//! [`Core`] is the transient pipeline (ROB, rename map, fetch state)
//! driven one cycle at a time over a [`CommittedSource`] stream. The
//! stage implementations live in sibling modules: `frontend` (fetch,
//! dispatch, value prediction), `backend` (issue, completion, commit)
//! and `recovery` (taint tracking, reissue/refetch recovery).
//!
//! Besides the architectural structures, `Core` maintains a set of
//! incrementally-updated summaries of the ROB (queue occupancy, rename
//! pressure, a pending-issue bitset, a store list and a completion
//! heap) so the per-cycle stages touch only the entries they act on
//! instead of scanning the whole window. Debug builds continuously
//! cross-check every summary against a full scan, so the fast paths
//! cannot silently diverge from the architectural state.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rvp_bpred::BranchPredictor;
use rvp_emu::Committed;
use rvp_isa::{ExecClass, Program, Reg, RegClass, NUM_REGS};
use rvp_mem::Hierarchy;
use rvp_obs::{CounterSnapshot, CpiBucket, ObsConfig, ObsReport, PcTable, Sampler};
use rvp_vpred::{
    BufferConfig, BufferPredictor, CorrelationPredictor, DrvpPredictor, GabbayPredictor,
};

use crate::config::UarchConfig;
use crate::recovery::RobSet;
use crate::scheme::{Recovery, Scheme};
use crate::source::{CommittedSource, EmuSource};
use crate::stats::{SimError, SimStats};

/// Cycles without a commit before the deadlock watchdog trips.
const WATCHDOG_CYCLES: u64 = 500_000;

/// How often debug builds cross-check the incremental ROB summaries
/// against a full scan.
#[cfg(debug_assertions)]
const VALIDATE_EVERY: u64 = 64;

/// One in-flight instruction (a reorder-buffer entry).
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) rec: Committed,
    pub(crate) queue: RegClass,
    pub(crate) exec: ExecClass,
    pub(crate) is_store: bool,
    pub(crate) is_load: bool,
    /// Producer seqs for the register sources.
    pub(crate) deps: [Option<u64>; 2],
    pub(crate) in_iq: bool,
    pub(crate) issued_at: Option<u64>,
    pub(crate) complete_at: Option<u64>,
    pub(crate) done: bool,
    /// Earliest cycle this entry may (re)issue.
    pub(crate) earliest_issue: u64,
    /// Unverified predicted producers this entry's current result
    /// depends on.
    pub(crate) taint: RobSet,
    // --- value prediction ---
    pub(crate) predicted: bool,
    /// The value the scheme would predict (tracked for all in-scope
    /// instructions so confidence counters can train on it).
    pub(crate) pred_value: Option<u64>,
    pub(crate) pred_correct: bool,
    /// Producer whose completion makes the predicted value readable
    /// (the *old* register mapping); `None` = readable immediately.
    pub(crate) pred_dep: Option<u64>,
    pub(crate) verified: bool,
    /// Extra memory-hierarchy latency (cache/TLB misses) charged at
    /// issue; nonzero marks this entry memory-bound for cycle
    /// accounting.
    pub(crate) mem_extra: u64,
    /// This entry was invalidated by a value mispredict and is
    /// re-executing (reissue/selective recovery).
    pub(crate) reissued: bool,
    /// Seq of the first instruction that read this entry's predicted
    /// value.
    pub(crate) first_use: Option<u64>,
    /// For the hardware-correlation scheme: a register observed (at
    /// rename) to hold the value this instruction produced.
    pub(crate) corr_observed: Option<Reg>,
    // --- branches ---
    /// This branch was mispredicted at fetch and stalled the front end.
    pub(crate) stalled_fetch: bool,
    // --- rollback bookkeeping for refetch squashes ---
    pub(crate) prev_last_value: Option<u64>,
    pub(crate) had_last_value: bool,
}

/// A fetched record waiting to enter the ROB.
#[derive(Debug)]
pub(crate) struct Fetched {
    pub(crate) rec: Committed,
    /// Cycle the record clears the front end and may dispatch.
    pub(crate) arrival: u64,
    /// This branch was mispredicted at fetch and stalled the front end.
    pub(crate) stalled: bool,
}

/// The out-of-order timing simulator.
///
/// Create one per run; [`Simulator::run`] drives a program to completion
/// (or an instruction budget) and returns [`SimStats`].
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: UarchConfig,
    pub(crate) scheme: Scheme,
    pub(crate) recovery: Recovery,
    // predictor state
    pub(crate) bpred: BranchPredictor,
    pub(crate) mem: Hierarchy,
    pub(crate) buffer: Option<BufferPredictor>,
    pub(crate) drvp: Option<DrvpPredictor>,
    pub(crate) gabbay: Option<GabbayPredictor>,
    pub(crate) correlation: Option<CorrelationPredictor>,
    pub(crate) obs: ObsConfig,
}

impl Simulator {
    /// Builds a simulator for the given machine, prediction scheme and
    /// recovery model.
    ///
    /// # Panics
    ///
    /// Panics if `config.rob_size` exceeds the 256 entries the taint
    /// bitset representation supports.
    pub fn new(config: UarchConfig, scheme: Scheme, recovery: Recovery) -> Simulator {
        assert!(
            config.rob_size <= RobSet::CAPACITY,
            "rob_size {} exceeds the supported maximum of {}",
            config.rob_size,
            RobSet::CAPACITY,
        );
        let buffer = match &scheme {
            Scheme::Lvp { config, .. } => {
                Some(BufferPredictor::new(BufferConfig::LastValue(*config)))
            }
            Scheme::Buffer { config, .. } => Some(BufferPredictor::new(*config)),
            _ => None,
        };
        let drvp = match &scheme {
            Scheme::DynamicRvp { config, .. } => Some(DrvpPredictor::new(*config)),
            _ => None,
        };
        let gabbay = match &scheme {
            Scheme::Gabbay { .. } => Some(GabbayPredictor::paper()),
            _ => None,
        };
        let correlation = match &scheme {
            Scheme::HwCorrelation { config, .. } => Some(CorrelationPredictor::new(*config)),
            _ => None,
        };
        Simulator {
            bpred: BranchPredictor::new(config.bpred),
            mem: Hierarchy::new(config.mem),
            buffer,
            drvp,
            gabbay,
            correlation,
            obs: ObsConfig::off(),
            config,
            scheme,
            recovery,
        }
    }

    /// Enables optional instrumentation (time-series sampling, per-PC
    /// telemetry) for subsequent runs. The cycle-accounting CPI stack
    /// is always on.
    pub fn with_obs(mut self, obs: ObsConfig) -> Simulator {
        self.obs = obs;
        self
    }

    /// Runs `program` for at most `max_insts` committed instructions,
    /// live-emulating the committed stream ([`EmuSource`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Emu`] for malformed programs and
    /// [`SimError::Deadlock`] if the pipeline stops making progress (a
    /// model invariant violation).
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<SimStats, SimError> {
        let mut source = EmuSource::new(program);
        self.run_with_source(program, &mut source, max_insts)
    }

    /// Runs `program` for at most `max_insts` committed instructions,
    /// consuming the committed stream from `source` instead of a live
    /// emulator. All sources produce bit-identical [`SimStats`]; see
    /// [`crate::source`] for the stream contract.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`]; source-level failures (emulation errors,
    /// unrecoverable trace corruption) surface as [`SimError::Emu`].
    pub fn run_with_source(
        &mut self,
        program: &Program,
        source: &mut dyn CommittedSource,
        max_insts: u64,
    ) -> Result<SimStats, SimError> {
        Core::new(self, program, source, max_insts).run()
    }
}

/// Why the front end is (re)filling an empty machine — the stall cause
/// empty-machine cycles are charged to. Set when a stall begins,
/// cleared at the next commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Redirect {
    None,
    Branch,
    ICache,
    ValueRefetch,
}

/// The running counter totals the sampler windows are deltas of.
fn snapshot(stats: &SimStats) -> CounterSnapshot {
    CounterSnapshot {
        committed: stats.committed,
        predictions: stats.predictions,
        correct_predictions: stats.correct_predictions,
        iq_int_occupancy_sum: stats.iq_int_occupancy_sum,
        iq_fp_occupancy_sum: stats.iq_fp_occupancy_sum,
    }
}

/// Per-run pipeline state.
pub(crate) struct Core<'s, 'p> {
    pub(crate) sim: &'s mut Simulator,
    pub(crate) program: &'p Program,
    pub(crate) source: &'s mut dyn CommittedSource,
    pub(crate) max_insts: u64,
    /// Distinct records consumed so far (== the seq after the youngest).
    pub(crate) pulled: u64,
    /// Rewound records the source still owes us (refetch recovery).
    pub(crate) replay_pending: u64,
    pub(crate) trace_done: bool,
    /// Fetched records waiting to enter the ROB.
    pub(crate) frontend: VecDeque<Fetched>,
    pub(crate) rob: VecDeque<Entry>,
    /// Seq of the youngest in-flight writer of each register.
    pub(crate) last_writer: [Option<u64>; NUM_REGS],
    /// Program-order register values at the dispatch point.
    pub(crate) shadow: [u64; NUM_REGS],
    /// Last committed-path value produced by each static instruction.
    pub(crate) last_value: Vec<Option<u64>>,
    /// Seq of the most recently dispatched instance of each static
    /// instruction (the old mapping of a last-value-exclusive register).
    pub(crate) last_instance: Vec<Option<u64>>,
    pub(crate) now: u64,
    pub(crate) fetch_resume_at: u64,
    /// Branch seq the fetcher is stalled on, if any.
    pub(crate) stalled_on: Option<u64>,
    /// Last I-cache line touched by fetch.
    pub(crate) last_line: u64,
    pub(crate) halted_fetch: bool,
    pub(crate) stats: SimStats,
    pub(crate) last_commit_cycle: u64,
    // --- incremental ROB summaries (cross-checked in debug builds) ---
    /// Occupied queue slots per class, indexed by `RegClass as usize`.
    pub(crate) iq_occupancy: [usize; 2],
    /// In-flight destination writers per class (rename pressure).
    pub(crate) writers: [usize; 2],
    /// Entries holding a queue slot after issuing (`in_iq && issued`).
    pub(crate) held_issued: usize,
    /// Entries with a non-empty taint set.
    pub(crate) tainted: usize,
    /// Dispatched-but-not-issued entries, by ROB slot.
    pub(crate) to_issue: RobSet,
    /// Seqs of in-flight stores, oldest first (memory disambiguation).
    pub(crate) stores: VecDeque<u64>,
    /// Scheduled writebacks as `(complete_at, seq)`; lazily invalidated,
    /// so entries are re-validated against the ROB when popped.
    pub(crate) completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Reusable buffer for the squash → rewind hand-off.
    pub(crate) squash_scratch: Vec<Committed>,
    // --- observability ---
    /// Most recent front-end redirect cause (cycle accounting).
    pub(crate) redirect: Redirect,
    /// Dispatch was blocked by a full ROB/IQ/rename file this cycle.
    pub(crate) dispatch_blocked: bool,
    /// Optional windowed time-series sampler.
    pub(crate) sampler: Option<Sampler>,
    /// Optional per-static-instruction outcome table.
    pub(crate) pc_table: Option<PcTable>,
}

impl<'s, 'p> Core<'s, 'p> {
    pub(crate) fn new(
        sim: &'s mut Simulator,
        program: &'p Program,
        source: &'s mut dyn CommittedSource,
        max_insts: u64,
    ) -> Core<'s, 'p> {
        let mut shadow = [0u64; NUM_REGS];
        shadow[rvp_isa::analysis::abi::SP.index()] = rvp_emu::STACK_TOP;
        let sampler = (sim.obs.sample_interval > 0)
            .then(|| Sampler::new(sim.obs.sample_interval, sim.obs.ring_capacity));
        let pc_table = sim.obs.track_pc.then(|| PcTable::new(program.len()));
        Core {
            sampler,
            pc_table,
            source,
            program,
            max_insts,
            pulled: 0,
            replay_pending: 0,
            trace_done: false,
            frontend: VecDeque::new(),
            rob: VecDeque::new(),
            last_writer: [None; NUM_REGS],
            shadow,
            last_value: vec![None; program.len()],
            last_instance: vec![None; program.len()],
            now: 0,
            fetch_resume_at: 0,
            stalled_on: None,
            last_line: u64::MAX,
            halted_fetch: false,
            stats: SimStats::default(),
            last_commit_cycle: 0,
            iq_occupancy: [0; 2],
            writers: [0; 2],
            held_issued: 0,
            tainted: 0,
            to_issue: RobSet::EMPTY,
            stores: VecDeque::new(),
            completions: BinaryHeap::new(),
            squash_scratch: Vec::new(),
            redirect: Redirect::None,
            dispatch_blocked: false,
            sim,
        }
    }

    pub(crate) fn run(mut self) -> Result<SimStats, SimError> {
        loop {
            let committed_before = self.stats.committed;
            self.dispatch_blocked = false;
            self.process_completions();
            self.commit();
            self.issue();
            self.dispatch();
            self.fetch()?;
            self.stats.iq_int_occupancy_sum += self.iq_occupancy[RegClass::Int as usize] as u64;
            self.stats.iq_fp_occupancy_sum += self.iq_occupancy[RegClass::Fp as usize] as u64;
            #[cfg(debug_assertions)]
            if self.now.is_multiple_of(VALIDATE_EVERY) {
                self.validate_summaries();
            }
            if self.finished() {
                break;
            }
            if self.now - self.last_commit_cycle > WATCHDOG_CYCLES {
                return Err(SimError::Deadlock {
                    cycle: self.now,
                    committed: self.stats.committed,
                });
            }
            // Cycle accounting: charge this elapsed cycle to exactly one
            // bucket (the final, non-elapsing iteration is never
            // charged, so the stack sums to `cycles` by construction).
            let committed_now = self.stats.committed - committed_before;
            if committed_now > 0 {
                self.redirect = Redirect::None;
            }
            let bucket = self.classify_cycle(committed_now);
            self.stats.cpi.add(bucket, 1);
            if let Some(sampler) = &mut self.sampler {
                sampler.tick(self.now, snapshot(&self.stats));
            }
            self.now += 1;
        }
        self.stats.cycles = self.now.max(1);
        // The degenerate empty run elapses one nominal cycle.
        let accounted = self.stats.cpi.total();
        if accounted < self.stats.cycles {
            self.stats.cpi.add(CpiBucket::Base, self.stats.cycles - accounted);
        }
        self.stats.branch = *self.sim.bpred.stats();
        self.stats.mem = *self.sim.mem.stats();
        self.finish_obs();
        Ok(self.stats)
    }

    /// Folds the optional instrumentation into the final stats.
    fn finish_obs(&mut self) {
        if self.sampler.is_none() && self.pc_table.is_none() {
            return;
        }
        let mut report = ObsReport::default();
        if let Some(mut sampler) = self.sampler.take() {
            report.sample_interval = sampler.interval();
            sampler.finish(self.now, snapshot(&self.stats));
            let (samples, dropped) = sampler.into_windows();
            report.samples = samples;
            report.dropped_windows = dropped;
        }
        if let Some(table) = self.pc_table.take() {
            report.top_costly = table.top_by_costly(self.sim.obs.top_k);
            report.top_correct = table.top_by_correct(self.sim.obs.top_k);
        }
        self.stats.obs = Some(report);
    }

    /// The cycle-attribution priority ladder (documented in DESIGN.md).
    fn classify_cycle(&self, committed_now: u64) -> CpiBucket {
        if committed_now > 0 {
            return CpiBucket::Base;
        }
        if let Some(head) = self.rob.front() {
            if head.reissued && !head.done {
                return CpiBucket::Reissue;
            }
            if !head.done && head.issued_at.is_some() && head.mem_extra > 0 {
                return CpiBucket::DCache;
            }
            if self.dispatch_blocked {
                return CpiBucket::QueueFull;
            }
            return CpiBucket::Base;
        }
        // Empty machine: charge the front end by redirect cause.
        if self.stalled_on.is_some() {
            return CpiBucket::BranchMispredict;
        }
        match self.redirect {
            Redirect::ValueRefetch => CpiBucket::ValueRefetch,
            Redirect::Branch => CpiBucket::BranchMispredict,
            Redirect::ICache => CpiBucket::ICache,
            Redirect::None => CpiBucket::FetchStall,
        }
    }

    fn finished(&mut self) -> bool {
        self.rob.is_empty()
            && self.frontend.is_empty()
            && self.replay_pending == 0
            && (self.trace_done || self.pulled >= self.max_insts || self.halted_fetch)
    }

    /// Bookkeeping for one record leaving the source: fresh records
    /// raise the high-water mark, rewound ones repay the replay debt.
    pub(crate) fn note_consumed(&mut self, seq: u64) {
        if seq >= self.pulled {
            debug_assert_eq!(seq, self.pulled, "committed stream must be consecutive");
            self.pulled = seq + 1;
        } else {
            debug_assert!(self.replay_pending > 0, "unexpected replayed record");
            self.replay_pending -= 1;
        }
    }

    /// Whether fetch may pull another record without exceeding the
    /// instruction budget (rewound records are always replayable).
    pub(crate) fn may_pull(&self) -> bool {
        !self.trace_done && (self.pulled < self.max_insts || self.replay_pending > 0)
    }

    // ------------------------------------------------------------------
    // ROB helpers
    // ------------------------------------------------------------------

    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.rec.seq;
        if seq < head {
            return None;
        }
        let i = (seq - head) as usize;
        (i < self.rob.len()).then_some(i)
    }

    /// Cross-checks every incremental ROB summary against a full scan.
    /// Debug builds only; this is the proof that the scan-free fast
    /// paths cannot drift from the architectural state.
    #[cfg(debug_assertions)]
    fn validate_summaries(&self) {
        for class in [RegClass::Int, RegClass::Fp] {
            let iq = self.rob.iter().filter(|e| e.in_iq && e.queue == class).count();
            assert_eq!(self.iq_occupancy[class as usize], iq, "iq occupancy drift ({class})");
            let writers =
                self.rob.iter().filter(|e| e.rec.dst.is_some_and(|d| d.class() == class)).count();
            assert_eq!(self.writers[class as usize], writers, "writer count drift ({class})");
        }
        let held = self.rob.iter().filter(|e| e.in_iq && e.issued_at.is_some()).count();
        assert_eq!(self.held_issued, held, "held-slot count drift");
        let tainted = self.rob.iter().filter(|e| !e.taint.is_empty()).count();
        assert_eq!(self.tainted, tainted, "tainted count drift");
        let unissued = self.rob.iter().filter(|e| e.issued_at.is_none()).count();
        assert_eq!(self.to_issue.len(), unissued, "pending-issue bitset drift");
        for e in &self.rob {
            assert_eq!(
                self.to_issue.contains(e.rec.seq),
                e.issued_at.is_none(),
                "pending-issue bit drift at seq {}",
                e.rec.seq
            );
            assert!(e.issued_at.is_some() || e.in_iq, "unissued entries hold a queue slot");
        }
        let stores: Vec<u64> = self.rob.iter().filter(|e| e.is_store).map(|e| e.rec.seq).collect();
        assert_eq!(self.stores.iter().copied().collect::<Vec<_>>(), stores, "store list drift");
    }
}
