use rvp_bpred::BpredConfig;
use rvp_mem::MemConfig;

/// Execution latencies by functional-unit class, in cycles from issue to
/// result broadcast. (The paper does not tabulate latencies; these are
/// Alpha 21264-era values.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU ops, moves, branches.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// FP add/sub/compare/convert.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Load L1-hit latency (cache penalties are added on top).
    pub load: u64,
    /// Store (address generation; data is written at/after commit).
    pub store: u64,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            int_alu: 1,
            int_mul: 8,
            int_div: 20,
            fp_add: 4,
            fp_mul: 4,
            fp_div: 16,
            load: 2,
            store: 1,
        }
    }
}

/// Full machine configuration.
///
/// [`UarchConfig::table1`] reproduces the paper's baseline processor;
/// [`UarchConfig::wide16`] the aggressive 16-wide machine of Figure 8
/// ("double the instruction queue entries, functional units, renaming
/// registers, and fetch bandwidth ... up to three basic blocks per
/// cycle").
#[derive(Debug, Clone, PartialEq)]
pub struct UarchConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Basic blocks (taken transfers) fetch may cross per cycle.
    pub fetch_blocks: usize,
    /// Front-end stages between fetch and queue insertion; the branch
    /// mispredict penalty is `frontend_depth + 1` (the paper's 7 cycles
    /// for its 9-stage pipeline).
    pub frontend_depth: u64,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Integer instruction-queue entries.
    pub iq_int: usize,
    /// FP instruction-queue entries.
    pub iq_fp: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Renaming registers per class beyond the architectural 32.
    pub rename_regs: usize,
    /// Integer functional units.
    pub int_units: usize,
    /// How many of the integer units can perform loads/stores.
    pub ldst_ports: usize,
    /// FP functional units.
    pub fp_units: usize,
    /// Branch predictor configuration (BTB/RAS geometry, and the
    /// default gshare direction predictor when `bpred_spec` is unset).
    pub bpred: BpredConfig,
    /// Optional direction-predictor override as a registry config
    /// string (e.g. `"gshare:pht=4096,hist=12"` or `"bimodal"`); see
    /// [`rvp_bpred::new_branch_predictor`]. `None` keeps the paper's
    /// gshare built from `bpred`.
    pub bpred_spec: Option<String>,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Execution latencies.
    pub lat: Latencies,
    /// Extra register read ports available for verifying predicted
    /// *non-load* instructions, limiting such predictions per cycle
    /// (paper Section 4.2: "one or two extra read ports would limit the
    /// number of predictions per cycle, but place no limit on the number
    /// of instructions that can use predicted values"). `None` = no
    /// limit; the paper argues a single port suffices because dRVP
    /// averages 0.2–0.5 predictions per cycle.
    pub pred_ports: Option<usize>,
    /// Fetched-instruction buffer entries between fetch and dispatch.
    /// Fetch stops (backpressure) when the buffer is full. Sized far
    /// above the deepest dispatch stall observed on the paper's
    /// workloads, so on the nominal configurations it bounds memory
    /// without ever altering timing; it also fixes the frontend queue's
    /// ring-buffer capacity once, keeping the cycle loop allocation-free.
    pub fetch_buffer: usize,
}

impl UarchConfig {
    /// The paper's Table 1 baseline: 8-wide fetch of one basic block,
    /// 32+32 IQ entries, 6 integer (4 load/store) + 3 FP units, 9-stage
    /// pipeline with a 7-cycle mispredict penalty.
    pub fn table1() -> UarchConfig {
        UarchConfig {
            fetch_width: 8,
            fetch_blocks: 1,
            frontend_depth: 6,
            dispatch_width: 8,
            commit_width: 8,
            iq_int: 32,
            iq_fp: 32,
            rob_size: 128,
            rename_regs: 64,
            int_units: 6,
            ldst_ports: 4,
            fp_units: 3,
            bpred: BpredConfig::table1(),
            bpred_spec: None,
            mem: MemConfig::table1(),
            lat: Latencies::default(),
            pred_ports: None,
            fetch_buffer: 4096,
        }
    }

    /// The Figure 8 16-wide machine: doubled queues, units, renaming
    /// registers and fetch bandwidth, fetching up to three basic blocks
    /// per cycle.
    pub fn wide16() -> UarchConfig {
        UarchConfig {
            fetch_width: 16,
            fetch_blocks: 3,
            dispatch_width: 16,
            commit_width: 16,
            iq_int: 64,
            iq_fp: 64,
            rob_size: 256,
            rename_regs: 128,
            int_units: 12,
            ldst_ports: 8,
            fp_units: 6,
            ..UarchConfig::table1()
        }
    }
}

impl Default for UarchConfig {
    fn default() -> UarchConfig {
        UarchConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide16_doubles_resources() {
        let base = UarchConfig::table1();
        let wide = UarchConfig::wide16();
        assert_eq!(wide.fetch_width, 2 * base.fetch_width);
        assert_eq!(wide.iq_int, 2 * base.iq_int);
        assert_eq!(wide.int_units, 2 * base.int_units);
        assert_eq!(wide.fetch_blocks, 3);
        // Same memory system and predictor.
        assert_eq!(wide.mem, base.mem);
        assert_eq!(wide.bpred, base.bpred);
    }

    #[test]
    fn mispredict_penalty_is_seven() {
        let c = UarchConfig::table1();
        assert_eq!(c.frontend_depth + 1, 7);
    }
}
