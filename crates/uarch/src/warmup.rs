//! Functional warmup for sampled simulation.
//!
//! A representative interval plucked from the middle of a run would
//! start with cold caches, a cold branch predictor and an untrained
//! value predictor — the first few thousand cycles of the detailed
//! interval would then measure the sampling artifact, not the machine.
//! Functional warmup replays the committed records *preceding* the
//! interval through every long-lived predictor structure at zero timing
//! cost: the same training points the pipeline exercises (I-cache per
//! new fetch line, branch predict-and-train at fetch, the value
//! predictor's decide/train_value/train_outcome ladder, D-cache and TLB
//! per memory access), in commit order. The pipeline's own dispatch
//! order *is* commit order — the timing core is trace-driven over the
//! committed stream — so ordering fidelity is exact; only the few-cycle
//! lag between dispatch-time decisions and commit-time training is
//! approximated away.
//!
//! The architectural register state the prediction schemes resolve
//! against (the shadow file, per-PC last values) is returned as a
//! [`WarmState`] and injected into the detailed run's core, so a
//! same-register or exclusive-register reuse scheme sees the values the
//! full run would have had at the interval boundary.

use rvp_emu::Committed;
use rvp_isa::{Program, Reg, NUM_REGS, NUM_REGS_PER_CLASS};
use rvp_vpred::{Decision, Outcome, ReuseKind};

use crate::core::{Core, Simulator};
use crate::meta::PredMode;
use crate::source::CommittedSource;
use crate::stats::{SimError, SimStats};

/// Architectural predictor-visible state at an interval boundary,
/// produced by [`Simulator::functional_warmup`] and consumed by
/// [`Simulator::run_warmed_with_source`].
#[derive(Debug, Clone)]
pub struct WarmState {
    /// Program-order register values ([`Core`]'s shadow file).
    pub shadow: [u64; NUM_REGS],
    /// Last committed value produced by each static instruction.
    pub last_value: Vec<Option<u64>>,
    /// Seq (in the *warmup* stream's numbering) of each static
    /// instruction's most recent dynamic instance. Stale seqs are safe:
    /// the detailed run's ROB never contains them, so the availability
    /// check treats them as long since completed — which they are.
    pub last_instance: Vec<Option<u64>>,
}

impl WarmState {
    /// The cold state a fresh [`Core`] starts from, for a program of
    /// `program_len` static instructions.
    pub fn fresh(program_len: usize) -> WarmState {
        let mut shadow = [0u64; NUM_REGS];
        shadow[rvp_isa::analysis::abi::SP.index()] = rvp_emu::STACK_TOP;
        WarmState {
            shadow,
            last_value: vec![None; program_len],
            last_instance: vec![None; program_len],
        }
    }
}

fn sub_branch(a: &rvp_bpred::BpredStats, b: &rvp_bpred::BpredStats) -> rvp_bpred::BpredStats {
    rvp_bpred::BpredStats {
        cond_branches: a.cond_branches - b.cond_branches,
        cond_mispredicts: a.cond_mispredicts - b.cond_mispredicts,
        target_mispredicts: a.target_mispredicts - b.target_mispredicts,
        returns: a.returns - b.returns,
        return_mispredicts: a.return_mispredicts - b.return_mispredicts,
    }
}

fn sub_cache(a: &rvp_mem::CacheStats, b: &rvp_mem::CacheStats) -> rvp_mem::CacheStats {
    rvp_mem::CacheStats { accesses: a.accesses - b.accesses, misses: a.misses - b.misses }
}

fn sub_mem(a: &rvp_mem::HierarchyStats, b: &rvp_mem::HierarchyStats) -> rvp_mem::HierarchyStats {
    rvp_mem::HierarchyStats {
        l1i: sub_cache(&a.l1i, &b.l1i),
        l1d: sub_cache(&a.l1d, &b.l1d),
        l2: sub_cache(&a.l2, &b.l2),
        itlb_misses: a.itlb_misses - b.itlb_misses,
        dtlb_misses: a.dtlb_misses - b.dtlb_misses,
    }
}

impl Simulator {
    /// Replays `records` (commit order, any contiguous slice of a run)
    /// through the branch predictor, cache hierarchy and value
    /// predictor at zero timing cost, returning the architectural
    /// [`WarmState`] at the end of the slice. Mirrors the pipeline's
    /// training points exactly; see the module docs.
    pub fn functional_warmup(&mut self, program: &Program, records: &[Committed]) -> WarmState {
        let _span = rvp_obs::span!("sample.warmup", { insts: records.len() as u64 });
        let meta = crate::meta::build(program, &self.scheme, &self.config);
        let mut warm = WarmState::fresh(program.len());
        let mut last_line = u64::MAX;
        let scope = self.scheme.scope;
        for rec in records {
            let m = &meta[rec.pc];
            // I-cache/ITLB: one access per new fetch line, as in fetch.
            if m.line != last_line {
                self.mem.access_inst(Program::byte_addr(rec.pc));
                last_line = m.line;
            }
            // Branch predict-and-train (perfect history repair, the same
            // single step the fetch stage uses).
            if let Some(kind) = m.bkind {
                self.bpred.update(rec.pc, kind, rec.taken.unwrap_or(true), rec.next_pc);
            }
            // The dispatch-point prediction decision, resolved against
            // the warm architectural state. Run for its training side
            // effects; the candidate feeds commit-time outcome training.
            let pred_value = self.warm_decide(rec, m.mode, &warm);
            let corr_observed = match rec.dst {
                Some(dst) if m.corr_learn => {
                    if rec.old_value == rec.new_value {
                        Some(dst)
                    } else {
                        (0..NUM_REGS_PER_CLASS)
                            .map(|n| Reg::new(dst.class(), n))
                            .find(|r| !r.is_zero() && warm.shadow[r.index()] == rec.new_value)
                    }
                }
                _ => None,
            };
            // D-cache/DTLB, at the issue stage's access points.
            if let Some(addr) = rec.eff_addr {
                if m.is_load {
                    self.mem.access_data(addr, false);
                } else if m.is_store {
                    self.mem.access_data(addr, true);
                }
            }
            // Writeback-time value training.
            if self.value_training && rec.dst.is_some() && scope.admits(m.is_load, true) {
                if let Some(p) = self.scheme.predictor.as_mut() {
                    p.train_value(rec.pc, rec.new_value);
                }
            }
            // Commit-time outcome training.
            if let Some(dst) = rec.dst {
                if scope.admits(m.is_load, true) {
                    if let Some(p) = self.scheme.predictor.as_mut() {
                        p.train_outcome(&Outcome {
                            pc: rec.pc,
                            dst,
                            predicted: pred_value,
                            actual: rec.new_value,
                            prior: rec.old_value,
                            observed: corr_observed,
                        });
                    }
                }
            }
            // Architectural update, last (everything above reads the
            // pre-instruction state, as dispatch does).
            if let Some(dst) = rec.dst {
                warm.shadow[dst.index()] = rec.new_value;
                warm.last_value[rec.pc] = Some(rec.new_value);
                warm.last_instance[rec.pc] = Some(rec.seq);
            }
        }
        warm
    }

    /// The warmup mirror of the dispatch-time `predict` resolution:
    /// the same [`Decision`] ladder, with register reads answered from
    /// the warm shadow state (there are no in-flight producers in a
    /// functional model, so availability gating does not apply).
    fn warm_decide(&mut self, rec: &Committed, mode: PredMode, warm: &WarmState) -> Option<u64> {
        let PredMode::On(kind) = mode else {
            return None;
        };
        let dst = rec.dst.expect("a predicting mode implies a written destination");
        let decision = self
            .scheme
            .predictor
            .as_mut()
            .expect("a predicting mode implies a predictor")
            .decide(rec.pc, dst);
        match decision {
            Decision::Idle => None,
            Decision::Track | Decision::Predict => Some(match kind {
                ReuseKind::SameReg => rec.old_value,
                ReuseKind::OtherReg(r) => warm.shadow[r.index()],
                ReuseKind::LastValue => warm.last_value[rec.pc].unwrap_or(rec.old_value),
            }),
            Decision::Value(v) => Some(v),
            Decision::TrackReg(r) | Decision::PredictReg(r) => {
                Some(if r == dst { rec.old_value } else { warm.shadow[r.index()] })
            }
        }
    }

    /// As [`Simulator::run_with_source`], but starting the core from a
    /// warmed architectural state, and reporting only the detailed
    /// interval's branch/memory statistics (activity the warmup itself
    /// put into the shared predictor structures is excluded).
    ///
    /// # Errors
    ///
    /// As [`Simulator::run_with_source`].
    ///
    /// # Panics
    ///
    /// Panics if `warm` was built for a program of a different static
    /// length.
    pub fn run_warmed_with_source<S: CommittedSource + ?Sized>(
        &mut self,
        program: &Program,
        source: &mut S,
        max_insts: u64,
        warm: &WarmState,
    ) -> Result<SimStats, SimError> {
        assert_eq!(
            warm.last_value.len(),
            program.len(),
            "warm state belongs to a different program"
        );
        let branch_before = *self.bpred.stats();
        let mem_before = *self.mem.stats();
        let mut core = Core::new(self, program, source, max_insts);
        core.shadow = warm.shadow;
        core.last_value.clone_from(&warm.last_value);
        core.last_instance.clone_from(&warm.last_instance);
        let mut stats = core.run()?;
        stats.branch = sub_branch(&stats.branch, &branch_before);
        stats.mem = sub_mem(&stats.mem, &mem_before);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use rvp_isa::{ProgramBuilder, Reg};

    use super::*;
    use crate::columns::TraceColumns;
    use crate::config::UarchConfig;
    use crate::scheme::{Recovery, Scheme};
    use crate::source::SharedSource;

    /// A two-register counting loop with a store, long enough to split.
    fn loop_program() -> Program {
        let (a, b) = (Reg::int(1), Reg::int(2));
        let mut pb = ProgramBuilder::new();
        pb.li(a, 2_000);
        pb.li(b, 0);
        pb.label("top");
        pb.addi(b, b, 3);
        pb.st(b, Reg::int(0), 64);
        pb.ld(Reg::int(3), Reg::int(0), 64);
        // A loop-invariant load (address 128 is never stored to): the
        // one value in this loop a last-value predictor can get right.
        pb.ld(Reg::int(4), Reg::int(0), 128);
        pb.subi(a, a, 1);
        pb.bnez(a, "top");
        pb.halt();
        pb.build().expect("valid program")
    }

    fn records_of(program: &Program, n: u64) -> Vec<Committed> {
        let trace = SharedSource::capture(program, n).expect("capture");
        (0..trace.len()).map(|i| trace.record(i).expect("in range")).collect()
    }

    fn rebase(records: &[Committed]) -> Arc<TraceColumns> {
        let rebased: Vec<Committed> =
            records.iter().enumerate().map(|(i, r)| Committed { seq: i as u64, ..*r }).collect();
        Arc::new(TraceColumns::from_records(&rebased))
    }

    #[test]
    fn warm_state_tracks_the_architectural_registers() {
        let program = loop_program();
        let records = records_of(&program, 500);
        let mut sim =
            Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Refetch);
        let warm = sim.functional_warmup(&program, &records);
        // The shadow file must equal the emulator's register state at
        // the slice boundary: reconstruct it from the records.
        let mut expect = WarmState::fresh(program.len());
        for r in &records {
            if let Some(dst) = r.dst {
                expect.shadow[dst.index()] = r.new_value;
            }
        }
        assert_eq!(warm.shadow, expect.shadow);
        let last = records.iter().rev().find(|r| r.dst.is_some()).expect("has writes");
        assert_eq!(warm.last_value[last.pc], Some(last.new_value));
        assert_eq!(warm.last_instance[last.pc], Some(last.seq));
    }

    #[test]
    fn warmed_run_reports_only_interval_branch_and_memory_stats() {
        let program = loop_program();
        let all = records_of(&program, 1_200);
        let (head, tail) = all.split_at(600);
        let mut sim =
            Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Refetch);
        let warm = sim.functional_warmup(&program, head);
        let mut source = SharedSource::new(rebase(tail));
        let stats = sim
            .run_warmed_with_source(&program, &mut source, tail.len() as u64, &warm)
            .expect("warmed run");
        assert_eq!(stats.committed, tail.len() as u64);
        // Branch counters must cover exactly the detail interval, not
        // the warmup records that also trained the shared predictor.
        let detail_branches = tail.iter().filter(|r| r.taken.is_some()).count() as u64;
        assert_eq!(stats.branch.cond_branches, detail_branches);
        assert!(stats.mem.l1d.accesses > 0);
        assert!(
            stats.mem.l1d.accesses <= tail.iter().filter(|r| r.eff_addr.is_some()).count() as u64
        );
    }

    #[test]
    fn warmup_improves_mid_stream_fidelity() {
        // Simulate the same mid-run interval cold and warmed; the warmed
        // run must not be slower — a warmed branch predictor and caches
        // can only help this regular loop.
        let program = loop_program();
        let all = records_of(&program, 4_000);
        let (head, tail) = all.split_at(2_000);
        let detail = rebase(tail);

        let mut cold =
            Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Refetch);
        let mut cold_src = SharedSource::new(Arc::clone(&detail));
        let cold_stats =
            cold.run_with_source(&program, &mut cold_src, tail.len() as u64).expect("cold run");

        let mut sim =
            Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Refetch);
        let warm = sim.functional_warmup(&program, head);
        let mut src = SharedSource::new(detail);
        let warm_stats = sim
            .run_warmed_with_source(&program, &mut src, tail.len() as u64, &warm)
            .expect("warmed run");

        assert!(
            warm_stats.cycles <= cold_stats.cycles,
            "warmup made the interval slower: {} vs {} cycles",
            warm_stats.cycles,
            cold_stats.cycles
        );
        assert!(
            warm_stats.branch.cond_mispredicts <= cold_stats.branch.cond_mispredicts,
            "warmed bpred mispredicted more"
        );
    }

    #[test]
    fn warmed_run_with_a_value_predictor_is_well_formed() {
        // Exercise the decide/train ladder and the stale-seq last_value
        // injection with a real predicting scheme.
        let program = loop_program();
        let all = records_of(&program, 2_000);
        let (head, tail) = all.split_at(1_000);
        let mut sim = Simulator::new(UarchConfig::table1(), Scheme::lvp_all(), Recovery::Selective);
        let warm = sim.functional_warmup(&program, head);
        let mut source = SharedSource::new(rebase(tail));
        let stats = sim
            .run_warmed_with_source(&program, &mut source, tail.len() as u64, &warm)
            .expect("warmed predicting run");
        assert_eq!(stats.committed, tail.len() as u64);
        assert!(stats.predictions > 0, "warmed LVP should predict in a steady loop");
        let total = stats.cpi.total();
        assert_eq!(total, stats.cycles, "CPI stack invariant broken by warm start");
    }
}
