use rvp_vpred::{
    BufferConfig, BufferVp, CorrelationConfig, CorrelationVp, DrvpConfig, DrvpVp, GabbayVp,
    LvpConfig, PredictionPlan, Scope, SrvpVp, ValuePredictor,
};

/// Value-misprediction recovery mechanism (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// A value mispredict is treated like a branch mispredict:
    /// instructions beginning with the first use of the predicted value
    /// are squashed and refetched. Highest mispredict cost, but no
    /// instruction-queue pressure on correct predictions.
    Refetch,
    /// All instructions after the first use are kept in the instruction
    /// queue until they are no longer speculative, and may reissue from
    /// there one cycle after a mispredict.
    Reissue,
    /// Only instructions (transitively) dependent on the predicted value
    /// are kept in the queue until the prediction resolves. Best overall
    /// in the paper.
    Selective,
}

/// How the profile-derived [`PredictionPlan`] scopes prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// The plan is exhaustive: only listed PCs are predicted, each
    /// through its listed reuse relation, and the [`Scope`] filter is
    /// bypassed (static RVP — the compiler's marks *are* the scope).
    Exhaustive,
    /// The plan overlays scope-based defaults: every in-scope writer
    /// participates, listed PCs through their listed relation and
    /// unlisted ones through natural same-register reuse (dynamic RVP
    /// with optional compiler assistance). An empty plan degenerates to
    /// pure same-register reuse.
    Overlay,
}

/// The value-prediction scheme the machine runs: a scope filter, a
/// profile plan, and a boxed [`ValuePredictor`] from the open registry.
///
/// This replaced a closed enum the pipeline matched on. The timing core
/// now dispatches through the trait only; everything scheme-specific the
/// hardware would know statically (scope, the compiler's plan) lives
/// here, and everything it learns dynamically lives inside the
/// predictor.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// Display label (the registry name of the scheme that built this,
    /// or a caller-chosen tag for hand-assembled schemes).
    pub label: String,
    /// Which instructions may be predicted (and trained on).
    pub scope: Scope,
    /// Profile-derived per-PC reuse relations (may be empty).
    pub plan: PredictionPlan,
    /// How the plan scopes prediction.
    pub plan_mode: PlanMode,
    /// The predictor, or `None` for the no-prediction baseline.
    pub predictor: Option<Box<dyn ValuePredictor>>,
}

impl Scheme {
    /// The no-value-prediction baseline.
    pub fn no_predict() -> Scheme {
        Scheme {
            label: "no_predict".into(),
            scope: Scope::LoadsOnly,
            plan: PredictionPlan::new(),
            plan_mode: PlanMode::Overlay,
            predictor: None,
        }
    }

    /// A scheme around an arbitrary predictor with an empty plan.
    pub fn new(
        label: impl Into<String>,
        scope: Scope,
        predictor: Box<dyn ValuePredictor>,
    ) -> Scheme {
        Scheme {
            label: label.into(),
            scope,
            plan: PredictionPlan::new(),
            plan_mode: PlanMode::Overlay,
            predictor: Some(predictor),
        }
    }

    /// Attaches a profile plan (builder style).
    pub fn with_plan(mut self, plan: PredictionPlan, mode: PlanMode) -> Scheme {
        self.plan = plan;
        self.plan_mode = mode;
        self
    }

    /// Convenience constructor: the paper's `lvp` (loads only).
    pub fn lvp_loads() -> Scheme {
        Scheme::new(
            "lvp",
            Scope::LoadsOnly,
            Box::new(BufferVp::new(BufferConfig::LastValue(LvpConfig::paper()))),
        )
    }

    /// Convenience constructor: the paper's `lvp_all`.
    pub fn lvp_all() -> Scheme {
        Scheme::new(
            "lvp_all",
            Scope::AllInsts,
            Box::new(BufferVp::new(BufferConfig::LastValue(LvpConfig::paper()))),
        )
    }

    /// Convenience constructor: any buffer-based predictor (stride,
    /// context, hybrid) — the related-work baselines.
    pub fn buffer(scope: Scope, config: BufferConfig) -> Scheme {
        let p = BufferVp::new(config);
        Scheme::new(p.name(), scope, Box::new(p))
    }

    /// Convenience constructor: static RVP over an exhaustive marking
    /// plan (marked loads are always predicted — no confidence
    /// hardware).
    pub fn srvp(plan: PredictionPlan) -> Scheme {
        Scheme::new("srvp", Scope::LoadsOnly, Box::new(SrvpVp))
            .with_plan(plan, PlanMode::Exhaustive)
    }

    /// Convenience constructor: `drvp` with a given assistance plan.
    pub fn drvp(scope: Scope, plan: PredictionPlan) -> Scheme {
        Scheme::new("drvp", scope, Box::new(DrvpVp::new(DrvpConfig::paper())))
            .with_plan(plan, PlanMode::Overlay)
    }

    /// Convenience constructor: the Gabbay & Mendelson register
    /// predictor (paper configuration).
    pub fn gabbay(scope: Scope) -> Scheme {
        Scheme::new(
            "gabbay",
            scope,
            Box::new(GabbayVp::new(3, 7, rvp_vpred::CounterPolicy::Resetting)),
        )
    }

    /// Convenience constructor: hardware-learned register correlation.
    pub fn hw_correlation(scope: Scope, config: CorrelationConfig) -> Scheme {
        Scheme::new("hwcorr", scope, Box::new(CorrelationVp::new(config)))
    }

    /// Whether the scheme predicts anything at all.
    pub fn is_predicting(&self) -> bool {
        self.predictor.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Scheme::lvp_loads().scope, Scope::LoadsOnly);
        assert_eq!(Scheme::lvp_all().scope, Scope::AllInsts);
        assert!(!Scheme::no_predict().is_predicting());
        assert!(Scheme::drvp(Scope::AllInsts, PredictionPlan::new()).is_predicting());
        assert_eq!(Scheme::srvp(PredictionPlan::new()).plan_mode, PlanMode::Exhaustive);
    }

    #[test]
    fn schemes_clone_with_predictor_state() {
        let s = Scheme::lvp_loads();
        let t = s.clone();
        assert_eq!(t.label, "lvp");
        assert!(t.is_predicting());
    }
}
