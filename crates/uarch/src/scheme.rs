use rvp_vpred::{BufferConfig, CorrelationConfig, DrvpConfig, LvpConfig, PredictionPlan, Scope};

/// Value-misprediction recovery mechanism (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// A value mispredict is treated like a branch mispredict:
    /// instructions beginning with the first use of the predicted value
    /// are squashed and refetched. Highest mispredict cost, but no
    /// instruction-queue pressure on correct predictions.
    Refetch,
    /// All instructions after the first use are kept in the instruction
    /// queue until they are no longer speculative, and may reissue from
    /// there one cycle after a mispredict.
    Reissue,
    /// Only instructions (transitively) dependent on the predicted value
    /// are kept in the queue until the prediction resolves. Best overall
    /// in the paper.
    Selective,
}

/// The value-prediction scheme the machine runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Scheme {
    /// No value prediction (baseline).
    NoPredict,
    /// Buffer-based last-value prediction (the comparison point): a
    /// tagged value table with confidence counters.
    Lvp {
        /// Which instructions may be predicted.
        scope: Scope,
        /// Table geometry.
        config: LvpConfig,
    },
    /// Any other buffer-based predictor (stride, context, hybrid) — the
    /// related-work baselines the paper cites but does not evaluate.
    Buffer {
        /// Which instructions may be predicted.
        scope: Scope,
        /// Which predictor and its geometry.
        config: BufferConfig,
    },
    /// Static register value prediction: the compiler marked the listed
    /// loads with `rvp_` opcodes, after reallocating registers so each
    /// listed load's value tends to already sit in its destination
    /// register (the plan records *which* reuse relation backs each
    /// mark). Marked loads are always predicted — no confidence
    /// hardware.
    StaticRvp {
        /// Profile-derived marking plan (loads only).
        plan: PredictionPlan,
    },
    /// Dynamic register value prediction: PC-indexed confidence counters
    /// and no value storage. Unlisted instructions track natural
    /// same-register reuse; the plan lists instructions whose reuse the
    /// compiler exposed via reallocation (dead-register or last-value).
    DynamicRvp {
        /// Which instructions may be predicted.
        scope: Scope,
        /// Compiler-assistance plan (may be empty).
        plan: PredictionPlan,
        /// Confidence-table geometry.
        config: DrvpConfig,
    },
    /// The Gabbay & Mendelson register predictor: confidence counters
    /// indexed by destination register number.
    Gabbay {
        /// Which instructions may be predicted.
        scope: Scope,
    },
    /// Hardware-learned register correlation (Jourdan et al. style):
    /// storageless like dRVP, but the hardware discovers *which*
    /// register holds the reusable value instead of relying on compiler
    /// reallocation — the combination the paper's related-work section
    /// sketches.
    HwCorrelation {
        /// Which instructions may be predicted.
        scope: Scope,
        /// Table geometry.
        config: CorrelationConfig,
    },
}

impl Scheme {
    /// Convenience constructor: the paper's `lvp` (loads only).
    pub fn lvp_loads() -> Scheme {
        Scheme::Lvp { scope: Scope::LoadsOnly, config: LvpConfig::paper() }
    }

    /// Convenience constructor: the paper's `lvp_all`.
    pub fn lvp_all() -> Scheme {
        Scheme::Lvp { scope: Scope::AllInsts, config: LvpConfig::paper() }
    }

    /// Convenience constructor: `drvp` with a given assistance plan.
    pub fn drvp(scope: Scope, plan: PredictionPlan) -> Scheme {
        Scheme::DynamicRvp { scope, plan, config: DrvpConfig::paper() }
    }

    /// Whether the scheme predicts anything at all.
    pub fn is_predicting(&self) -> bool {
        !matches!(self, Scheme::NoPredict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(matches!(Scheme::lvp_loads(), Scheme::Lvp { scope: Scope::LoadsOnly, .. }));
        assert!(matches!(Scheme::lvp_all(), Scheme::Lvp { scope: Scope::AllInsts, .. }));
        assert!(!Scheme::NoPredict.is_predicting());
        assert!(Scheme::drvp(Scope::AllInsts, PredictionPlan::new()).is_predicting());
    }
}
