use std::error::Error;
use std::fmt;

use rvp_bpred::BpredStats;
use rvp_emu::EmuError;
use rvp_mem::HierarchyStats;
use rvp_obs::{CpiStack, ObsReport};

/// Error returned by [`crate::Simulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The underlying program misbehaved (propagated from the emulator).
    Emu(EmuError),
    /// The pipeline made no forward progress for an implausibly long
    /// time — a model bug, reported rather than hanging.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed by then.
        committed: u64,
    },
    /// A train-input profile was applied to a ref-input program with a
    /// different static shape. Profiles are keyed by PC, so this would
    /// silently mispredict everything rather than fail; it is a workload
    /// generator bug and is reported as such.
    StructureMismatch {
        /// Static length of the train build.
        train_len: usize,
        /// Static length of the ref build.
        ref_len: usize,
    },
    /// The run's [`rvp_obs::CancelToken`] fired (job abort, deadline,
    /// drain, or watchdog) and the cycle loop squashed cooperatively.
    /// Not a model bug: the partial work is simply discarded.
    Cancelled {
        /// Cycle at which the cancel check observed the token.
        cycle: u64,
        /// Instructions committed by then.
        committed: u64,
        /// Why the token fired.
        reason: rvp_obs::CancelReason,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Emu(e) => write!(f, "emulation error: {e}"),
            SimError::Deadlock { cycle, committed } => {
                write!(f, "pipeline deadlock at cycle {cycle} after {committed} commits")
            }
            SimError::StructureMismatch { train_len, ref_len } => {
                write!(
                    f,
                    "train ({train_len} insts) and ref ({ref_len} insts) builds do not share \
                     static structure"
                )
            }
            SimError::Cancelled { cycle, committed, reason } => {
                write!(
                    f,
                    "run cancelled ({}) at cycle {cycle} after {committed} commits",
                    reason.as_str()
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Emu(e) => Some(e),
            SimError::Deadlock { .. }
            | SimError::StructureMismatch { .. }
            | SimError::Cancelled { .. } => None,
        }
    }
}

impl From<EmuError> for SimError {
    fn from(e: EmuError) -> SimError {
        SimError::Emu(e)
    }
}

/// Results of a timing-simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Committed instructions whose value was predicted.
    pub predictions: u64,
    /// ... of which the prediction was correct.
    pub correct_predictions: u64,
    /// Value mispredictions that triggered recovery (a consumer existed).
    pub costly_mispredictions: u64,
    /// Refetch squashes performed (refetch recovery only).
    pub squashes: u64,
    /// Instructions squashed by value-mispredict refetches.
    pub squashed_insts: u64,
    /// Individual instruction re-executions (reissue/selective recovery).
    pub reissued_insts: u64,
    /// Branch predictor statistics.
    pub branch: BpredStats,
    /// Cache/TLB statistics.
    pub mem: HierarchyStats,
    /// Cycles the fetch unit was stalled (unresolved branch mispredict,
    /// I-cache fill, or value-mispredict redirect).
    pub fetch_stall_cycles: u64,
    /// Sum over cycles of occupied integer-queue slots (divide by
    /// `cycles` for the average; reissue-style recovery inflates this —
    /// the effect behind the paper's Figure 4).
    pub iq_int_occupancy_sum: u64,
    /// Same for the FP queue.
    pub iq_fp_occupancy_sum: u64,
    /// Cycle-accounting CPI stack; bucket cycles sum to `cycles` by
    /// construction (the attribution ladder is documented in
    /// `DESIGN.md`).
    pub cpi: CpiStack,
    /// Optional instrumentation artifact (time series + per-PC top-K
    /// tables); present when the run was configured with an enabled
    /// [`rvp_obs::ObsConfig`].
    pub obs: Option<ObsReport>,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed instructions that were predicted (Table 2's
    /// "% insts predicted"), in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.predictions as f64 / self.committed as f64
        }
    }

    /// Fraction of predictions that were correct (Table 2's "pred.
    /// rate"), in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }

    /// Average occupied integer-queue slots per cycle.
    pub fn avg_iq_int_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_int_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the fetch unit was stalled, in `[0, 1]`.
    pub fn fetch_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fetch_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same program
    /// (ratio of IPCs).
    ///
    /// Degenerate baselines produce defined values rather than a silent
    /// `NaN`: if both IPCs are zero (e.g. two empty runs) the speedup is
    /// `1.0`; if only the baseline's is zero it is `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if the two runs committed different instruction counts —
    /// that would make the comparison meaningless.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert_eq!(
            self.committed, baseline.committed,
            "speedup requires runs over the same committed instruction count"
        );
        let (this, base) = (self.ipc(), baseline.ipc());
        if base == 0.0 {
            if this == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            this / base
        }
    }
}

impl rvp_json::ToJson for SimStats {
    fn to_json(&self) -> rvp_json::Json {
        let mut j = rvp_json::Json::obj([
            ("cycles", self.cycles.into()),
            ("committed", self.committed.into()),
            ("loads", self.loads.into()),
            ("predictions", self.predictions.into()),
            ("correct_predictions", self.correct_predictions.into()),
            ("costly_mispredictions", self.costly_mispredictions.into()),
            ("squashes", self.squashes.into()),
            ("squashed_insts", self.squashed_insts.into()),
            ("reissued_insts", self.reissued_insts.into()),
            ("fetch_stall_cycles", self.fetch_stall_cycles.into()),
            ("iq_int_occupancy_sum", self.iq_int_occupancy_sum.into()),
            ("iq_fp_occupancy_sum", self.iq_fp_occupancy_sum.into()),
            ("branch", self.branch.to_json()),
            ("mem", self.mem.to_json()),
            ("cpi", self.cpi.to_json()),
            ("ipc", self.ipc().into()),
            ("coverage", self.coverage().into()),
            ("accuracy", self.accuracy().into()),
        ]);
        if let (rvp_json::Json::Obj(pairs), Some(obs)) = (&mut j, &self.obs) {
            pairs.push(("obs".into(), obs.to_json()));
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            predictions: 50,
            correct_predictions: 45,
            fetch_stall_cycles: 25,
            iq_int_occupancy_sum: 1600,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.coverage(), 0.2);
        assert_eq!(s.accuracy(), 0.9);
        assert_eq!(s.fetch_stall_fraction(), 0.25);
        assert_eq!(s.avg_iq_int_occupancy(), 16.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.accuracy(), 1.0);
    }

    #[test]
    fn speedup_over_zero_cycle_baseline_is_defined() {
        // A default (zero-cycle) baseline used to yield NaN silently.
        let empty = SimStats::default();
        assert_eq!(empty.speedup_over(&empty), 1.0);

        let real = SimStats { cycles: 10, committed: 0, ..SimStats::default() };
        // Zero committed: both IPCs zero even with nonzero cycles.
        assert_eq!(real.speedup_over(&empty), 1.0);

        let progressed = SimStats { cycles: 10, committed: 20, ..SimStats::default() };
        let stuck = SimStats { cycles: 0, committed: 20, ..SimStats::default() };
        let speedup = progressed.speedup_over(&stuck);
        assert!(speedup.is_infinite() && speedup > 0.0);
        assert!(!progressed.speedup_over(&stuck).is_nan());
    }

    #[test]
    #[should_panic]
    fn speedup_requires_matching_commits() {
        let a = SimStats { cycles: 10, committed: 100, ..SimStats::default() };
        let b = SimStats { cycles: 10, committed: 99, ..SimStats::default() };
        let _ = a.speedup_over(&b);
    }
}
