//! Per-PC static metadata, precomputed once per run.
//!
//! The fetch and dispatch stages used to re-derive everything they
//! needed from [`rvp_isa::Inst`] on every dynamic instruction: queue
//! and execution class (a nested match over `Kind`), source registers,
//! control-flow kind (which *cloned* an indirect jump's target table
//! per fetch), and the scheme's per-PC prediction decision (a hash-map
//! lookup per dispatch for plan-carrying schemes). All of that is a
//! pure function of (program, scheme, machine config), so [`PcMeta`]
//! computes it once in `Core::new` and the hot loop indexes a dense,
//! cache-friendly table instead.

use rvp_bpred::BranchKind;
use rvp_isa::{ExecClass, Flow, Program, RegClass};
use rvp_vpred::ReuseKind;

use crate::config::UarchConfig;
use crate::scheme::{PlanMode, Scheme};

/// Sentinel for "no source register" (or the zero register, which never
/// carries a dependence) in [`PcMeta::srcs`].
pub(crate) const NO_SRC: u16 = u16::MAX;

/// The scheme's prediction behaviour for one static instruction,
/// resolved ahead of time so dispatch never consults the plan map or
/// scope filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PredMode {
    /// Never predicted (out of scope, no destination, or no predictor).
    Off,
    /// The predictor is consulted, carrying the plan-resolved
    /// register-reuse relation its `Track`/`Predict` decisions resolve
    /// through (buffer and correlation decisions ignore it — they name
    /// their value source themselves).
    On(ReuseKind),
}

/// Everything the per-cycle stages need to know about one static
/// instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PcMeta {
    /// Which instruction queue it dispatches to.
    pub(crate) queue: RegClass,
    pub(crate) is_load: bool,
    pub(crate) is_store: bool,
    pub(crate) is_halt: bool,
    /// Source register indices (`NO_SRC` = absent or the zero register).
    pub(crate) srcs: [u16; 2],
    /// Branch kind for the predictor; `None` for straight-line code.
    pub(crate) bkind: Option<BranchKind>,
    /// I-cache line index of the instruction's byte address.
    pub(crate) line: u64,
    /// Base execution latency (cache penalties are added at issue).
    pub(crate) lat: u64,
    /// Resolved prediction behaviour.
    pub(crate) mode: PredMode,
    /// Whether a register-observing predictor (hardware correlation)
    /// trains on this PC.
    pub(crate) corr_learn: bool,
}

/// Builds the dense per-PC table for `program` under `scheme`.
pub(crate) fn build(program: &Program, scheme: &Scheme, config: &UarchConfig) -> Vec<PcMeta> {
    let observes = scheme.predictor.as_ref().is_some_and(|p| p.observes_registers());
    program
        .insts()
        .iter()
        .enumerate()
        .map(|(pc, inst)| {
            let exec = inst.exec_class();
            let is_load = inst.is_load();
            // Matches `Committed::dst`: the emulator reports zero-register
            // writes as no destination at all.
            let writes = inst.dst().is_some_and(|d| !d.is_zero());
            let mode = if !writes || !scheme.is_predicting() {
                PredMode::Off
            } else {
                match scheme.plan_mode {
                    // Exhaustive plans bypass the scope filter: the
                    // compiler's marks are the scope.
                    PlanMode::Exhaustive => match scheme.plan.kind(pc) {
                        Some(kind) => PredMode::On(kind),
                        None => PredMode::Off,
                    },
                    PlanMode::Overlay => {
                        if scheme.scope.admits(is_load, true) {
                            PredMode::On(scheme.plan.kind(pc).unwrap_or(ReuseKind::SameReg))
                        } else {
                            PredMode::Off
                        }
                    }
                }
            };
            let corr_learn = writes && observes && scheme.scope.admits(is_load, true);
            let mut srcs = [NO_SRC; 2];
            for (k, src) in inst.srcs().into_iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        srcs[k] = r.index() as u16;
                    }
                }
            }
            let bkind = match inst.flow() {
                Flow::FallThrough | Flow::Halt => None,
                Flow::Always(t) => {
                    if inst.is_call() {
                        Some(BranchKind::Call { target: t })
                    } else {
                        Some(BranchKind::UncondDirect { target: t })
                    }
                }
                Flow::Conditional(t) => Some(BranchKind::CondDirect { target: t }),
                Flow::Indirect(_) => Some(BranchKind::Indirect),
                Flow::Return => Some(BranchKind::Return),
            };
            PcMeta {
                queue: inst.queue_class(),
                is_load,
                is_store: inst.is_store(),
                is_halt: matches!(inst.flow(), Flow::Halt),
                srcs,
                bkind,
                line: Program::byte_addr(pc) / config.mem.l1i.line_bytes,
                lat: match exec {
                    ExecClass::IntAlu => config.lat.int_alu,
                    ExecClass::IntMul => config.lat.int_mul,
                    ExecClass::IntDiv => config.lat.int_div,
                    ExecClass::FpAdd => config.lat.fp_add,
                    ExecClass::FpMul => config.lat.fp_mul,
                    ExecClass::FpDiv => config.lat.fp_div,
                    ExecClass::Load => config.lat.load,
                    ExecClass::Store => config.lat.store,
                },
                mode,
                corr_learn,
            }
        })
        .collect()
}
