//! A calendar wheel for scheduled writebacks.
//!
//! The completion queue used to be a `BinaryHeap<Reverse<(cycle, seq)>>`:
//! every issue paid an O(log n) sift-up and every writeback an O(log n)
//! sift-down, and the heap showed up prominently in cycle-loop
//! profiles. Completion times are bounded — base latency plus worst-case
//! memory-hierarchy penalties, far below the wheel span — so a classic
//! timing wheel fits: slot `c & (SLOTS-1)` holds the completions due at
//! cycle `c`, insertion is a `Vec::push`, and the per-cycle drain
//! touches only the current slot (almost always empty or tiny). A spill
//! heap keeps correctness for schedules beyond the span, so the wheel
//! never silently drops or reorders a completion.
//!
//! The contract matches the heap it replaces: [`CompletionWheel::collect_due`]
//! yields the completions due at `now` in ascending seq order (older
//! mispredicts must recover first), and stale schedules (squashed or
//! invalidated entries) are the caller's job to re-validate — the wheel
//! only stores `(cycle, seq)` pairs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel span in cycles; must exceed every schedulable latency for the
/// fast path (longer ones fall back to the spill heap, which stays
/// correct but pays heap costs).
const SLOTS: usize = 1024;

/// Initial per-slot capacity: completions scheduled into one slot are
/// bounded by issue width per cycle (and wheel-turn aliasing is rare),
/// so this covers the steady state without per-push reallocation.
const SLOT_CAPACITY: usize = 16;

/// Scheduled writebacks as `(complete_at, seq)` pairs on a timing
/// wheel, drained one cycle at a time.
#[derive(Debug)]
pub(crate) struct CompletionWheel {
    slots: Box<[Vec<(u64, u64)>]>,
    /// Schedules at or beyond `horizon + SLOTS` (rare).
    spill: BinaryHeap<Reverse<(u64, u64)>>,
    /// Entries across all slots (fast emptiness check).
    len: usize,
    /// Scratch for the due batch of a drain (kept to avoid per-cycle
    /// allocation).
    due: Vec<u64>,
}

impl CompletionWheel {
    pub(crate) fn new() -> CompletionWheel {
        CompletionWheel {
            // Not `vec![...; SLOTS]`: cloning an empty Vec drops its
            // preallocated capacity, so each slot is built individually.
            slots: (0..SLOTS).map(|_| Vec::with_capacity(SLOT_CAPACITY)).collect(),
            spill: BinaryHeap::with_capacity(SLOT_CAPACITY),
            len: 0,
            due: Vec::with_capacity(SLOT_CAPACITY),
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Schedules `seq` to complete at cycle `at` (which must not be in
    /// the past relative to the cycles already drained).
    #[inline]
    pub(crate) fn schedule(&mut self, now: u64, at: u64, seq: u64) {
        debug_assert!(at > now, "completions are scheduled in the future");
        if at - now < SLOTS as u64 {
            self.slots[(at % SLOTS as u64) as usize].push((at, seq));
            self.len += 1;
        } else {
            self.spill.push(Reverse((at, seq)));
        }
    }

    /// Collects the completions due at `now` into an internal buffer —
    /// ascending by seq — and returns how many there are. Read them
    /// back with [`CompletionWheel::due_seq`]; the two-phase API lets
    /// the caller mutate itself (recovery can squash) while iterating.
    #[inline]
    pub(crate) fn collect_due(&mut self, now: u64) -> usize {
        // Migrate spilled schedules that have entered the wheel span.
        while let Some(&Reverse((at, seq))) = self.spill.peek() {
            if at - now >= SLOTS as u64 {
                break;
            }
            self.spill.pop();
            self.slots[(at % SLOTS as u64) as usize].push((at, seq));
            self.len += 1;
        }
        self.due.clear();
        if self.len == 0 {
            return 0;
        }
        let slot = &mut self.slots[(now % SLOTS as u64) as usize];
        if slot.is_empty() {
            return 0;
        }
        // A slot may also hold schedules one or more full wheel turns
        // ahead; keep those and take only what is due now.
        let due = &mut self.due;
        slot.retain(|&(at, seq)| {
            if at == now {
                due.push(seq);
                false
            } else {
                debug_assert!(at > now, "missed completion");
                true
            }
        });
        self.len -= due.len();
        due.sort_unstable();
        due.len()
    }

    /// The `k`-th due seq from the last [`CompletionWheel::collect_due`].
    pub(crate) fn due_seq(&self, k: usize) -> u64 {
        self.due[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut CompletionWheel, now: u64) -> Vec<u64> {
        let n = w.collect_due(now);
        (0..n).map(|k| w.due_seq(k)).collect()
    }

    #[test]
    fn drains_in_seq_order_at_the_right_cycle() {
        let mut w = CompletionWheel::new();
        w.schedule(0, 3, 20);
        w.schedule(0, 3, 7);
        w.schedule(0, 5, 1);
        assert!(!w.is_empty());
        assert_eq!(drain(&mut w, 1), Vec::<u64>::new());
        assert_eq!(drain(&mut w, 3), vec![7, 20]);
        assert_eq!(drain(&mut w, 4), Vec::<u64>::new());
        assert_eq!(drain(&mut w, 5), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_schedules_spill_and_come_back() {
        let mut w = CompletionWheel::new();
        // Lands in the same slot as cycle 2 but a full turn later, plus
        // one beyond the span entirely.
        w.schedule(0, 2 + SLOTS as u64, 9);
        w.schedule(0, 3 * SLOTS as u64, 4);
        assert_eq!(drain(&mut w, 2), Vec::<u64>::new());
        let mut hits = Vec::new();
        for now in 3..=3 * SLOTS as u64 {
            let n = w.collect_due(now);
            for k in 0..n {
                hits.push((now, w.due_seq(k)));
            }
        }
        assert_eq!(hits, vec![(2 + SLOTS as u64, 9), (3 * SLOTS as u64, 4)]);
        assert!(w.is_empty());
    }
}
