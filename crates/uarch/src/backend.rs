//! The out-of-order back end: wakeup/issue, writeback (completion,
//! verification, recovery dispatch) and in-order commit.
//!
//! The stages here are scan-free on their hot paths: issue walks the
//! pending-issue bitset instead of the whole ROB, completions come off
//! a timing wheel, loads disambiguate against the store list, and
//! queue/rename pressure is answered from incremental counters. Debug
//! builds cross-check all of these against full scans every few cycles
//! (see `Core::validate_summaries`).

use rvp_isa::RegClass;
use rvp_vpred::Outcome;

use crate::core::{Core, NO_SEQ};
use crate::recovery::RobSet;
use crate::scheme::Recovery;
use crate::source::CommittedSource;

impl<'s, S: CommittedSource + ?Sized> Core<'s, S> {
    /// Availability of the value produced by `dep_seq` at the current
    /// cycle: `Ok(taints)` = ready, carrying the given speculative
    /// taints; `Err(blocker)` = not ready, and can only become ready
    /// once `blocker` completes (the wakeup seq the issue stage
    /// registers a waiter on).
    #[inline]
    pub(crate) fn dep_avail(&self, dep_seq: u64) -> Result<RobSet, u64> {
        let Some(i) = self.rob_index(dep_seq) else {
            // Younger than the ROB tail (squashed, awaiting refetch):
            // not available until the refetched instance — same seq —
            // completes. Older than the head: committed long ago.
            let awaiting_refetch = self.rob.back().is_some_and(|t| dep_seq > t.rec.seq);
            return if awaiting_refetch { Err(dep_seq) } else { Ok(RobSet::EMPTY) };
        };
        let p = &self.rob[i];
        if p.done {
            return Ok(p.taint);
        }
        if p.predicted && !p.verified {
            // Consumers may read the old mapping (the predicted value)
            // once *that* value is ready.
            let q = p.pred_dep;
            let mut taints = match (q != NO_SEQ).then(|| self.rob_index(q)).flatten() {
                None => RobSet::EMPTY,
                Some(qi) => {
                    let qe = &self.rob[qi];
                    if !qe.done {
                        return Err(q);
                    }
                    qe.taint
                }
            };
            taints.insert(dep_seq);
            return Ok(taints);
        }
        Err(dep_seq)
    }

    /// Marks pending entry `seq` (of the given queue class) stably
    /// blocked on the value of `dep`, whose unavailability is gated by
    /// `blocker`. Completion of either can make the value readable —
    /// when `blocker` is a predicted producer's own dependence, the
    /// producer finishing computes the real value without the blocker
    /// ever completing — so a waiter is registered on both.
    fn block_until(&mut self, class: RegClass, seq: u64, dep: u64, blocker: u64) {
        self.issue_blocked[class as usize].insert(seq);
        self.waiters[(blocker % RobSet::CAPACITY as u64) as usize].insert(seq);
        if dep != blocker {
            self.waiters[(dep % RobSet::CAPACITY as u64) as usize].insert(seq);
        }
    }

    // ------------------------------------------------------------------
    // Completion / verification / recovery
    // ------------------------------------------------------------------

    pub(crate) fn process_completions(&mut self) {
        // The wheel yields this cycle's completions ordered by seq; seq
        // order matters because older mispredicts must recover first.
        // Stale entries (invalidated or squashed since scheduling) are
        // recognized by re-validating against the ROB and skipped.
        let n = self.completions.collect_due(self.now);
        for k in 0..n {
            let seq = self.completions.due_seq(k);
            let Some(idx) = self.rob_index(seq) else { continue };
            {
                let e = &self.rob[idx];
                if e.done || e.complete_at != self.now {
                    continue;
                }
            }
            let e = &self.rob[idx];
            let stalled_fetch = e.stalled_fetch;
            let predicted = e.predicted;
            let pred_correct = e.pred_correct;
            let first_use = e.first_use;
            let (pc, is_load, dst, new_value) = (e.rec.pc, e.is_load, e.rec.dst, e.rec.new_value);

            self.rob[idx].done = true;
            // A completion can make pending consumers ready: wake the
            // entries that recorded this seq as their blocker. Stale
            // waiter bits (squashed or re-blocked entries) just trigger
            // a harmless re-check on the next walk.
            self.issue_idle = false;
            let slot = (seq % RobSet::CAPACITY as u64) as usize;
            let woken = self.waiters[slot];
            if !woken.is_empty() {
                self.issue_blocked[0].subtract(&woken);
                self.issue_blocked[1].subtract(&woken);
                self.waiters[slot] = RobSet::EMPTY;
            }

            // Value-storing predictors (LVP, stride, context, hybrid)
            // train at writeback, when the result exists — the standard
            // modelling point between the paper's two alternatives
            // ("insert speculative values ... and possibly pollute it, or
            // hold off inserting values until they become
            // non-speculative, forcing new instructions to possibly use
            // stale entries"): entries lag in-flight work by a few
            // cycles, and squashed-then-replayed instructions retrain.
            if self.sim.value_training && dst.is_some() {
                let scope = self.sim.scheme.scope;
                if scope.admits(is_load, true) {
                    if let Some(p) = self.sim.scheme.predictor.as_mut() {
                        p.train_value(pc, new_value);
                    }
                }
            }

            if stalled_fetch {
                self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
                if self.stalled_on == Some(seq) {
                    self.stalled_on = None;
                }
            }

            if predicted {
                self.rob[idx].verified = true;
                if pred_correct {
                    self.clear_taint(seq);
                } else if first_use != NO_SEQ {
                    self.stats.costly_mispredictions += 1;
                    if let Some(table) = &mut self.pc_table {
                        table.record_costly(pc);
                    }
                    match self.sim.recovery {
                        Recovery::Refetch => {
                            // Younger completions due this cycle whose
                            // entries get squashed are skipped by the
                            // heap re-validation above.
                            self.squash_from(first_use);
                        }
                        Recovery::Reissue | Recovery::Selective => {
                            self.invalidate_dependents(seq);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    pub(crate) fn commit(&mut self) {
        for _ in 0..self.sim.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || !head.taint.is_empty() || (head.predicted && !head.verified) {
                break;
            }
            let e = self.rob.pop_front().expect("non-empty");
            debug_assert!(
                !self.to_issue[e.queue as usize].contains(e.rec.seq),
                "committing unissued entry"
            );
            if e.in_iq {
                self.iq_occupancy[e.queue as usize] -= 1;
                if e.issued {
                    self.held_issued -= 1;
                    self.held_slots.remove(e.rec.seq);
                }
            }
            if e.is_store {
                debug_assert_eq!(self.stores.front(), Some(&e.rec.seq));
                self.stores.pop_front();
            }
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
            if e.is_load {
                self.stats.loads += 1;
            }
            if e.predicted {
                self.stats.predictions += 1;
                if e.pred_correct {
                    self.stats.correct_predictions += 1;
                }
                if let Some(table) = &mut self.pc_table {
                    table.record_commit(e.rec.pc, e.pred_correct);
                }
            }
            if let Some(dst) = e.rec.dst {
                self.writers[dst.class() as usize] -= 1;
                if self.last_writer[dst.index()] == Some(e.rec.seq) {
                    self.last_writer[dst.index()] = None;
                }
            }
            // Train the value predictor with the architectural outcome.
            // (The branch predictor trains at fetch with immediate
            // resolution — perfect history repair, the trace-driven
            // idealization — so branch behaviour is identical across
            // value-prediction schemes.) Each predictor applies its own
            // internal guard (e.g. dRVP only trains when dispatch
            // carried a candidate value); value-storing predictors
            // already trained at writeback.
            if let Some(dst) = e.rec.dst {
                let scope = self.sim.scheme.scope;
                if scope.admits(e.is_load, true) {
                    if let Some(p) = self.sim.scheme.predictor.as_mut() {
                        p.train_outcome(&Outcome {
                            pc: e.rec.pc,
                            dst,
                            predicted: e.pred_value,
                            actual: e.rec.new_value,
                            prior: e.rec.old_value,
                            observed: e.corr_observed,
                        });
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    pub(crate) fn issue(&mut self) {
        // Quiescence skip: if the previous walk proved every pending
        // entry stably blocked (nothing issued, nothing skipped for a
        // transient unit/timing reason) and no readiness-changing event
        // has happened since, the walk — and the slot-release pass,
        // whose transitions are driven by the same events — is a no-op.
        if self.issue_idle {
            return;
        }
        let cfg = &self.sim.config;
        let (mut int_used, mut fp_used, mut ldst_used) = (0usize, 0usize, 0usize);
        let (int_units, fp_units, ldst_ports) = (cfg.int_units, cfg.fp_units, cfg.ldst_ports);

        let Some(head_seq) = self.rob.front().map(|e| e.rec.seq) else {
            self.issue_idle = true;
            return;
        };
        let rob_len = self.rob.len();
        let mut issued_any = false;
        // An entry was skipped for a reason that can expire without one
        // of the flag-clearing events (unit exhausted, earliest-issue in
        // the future) — the walk must run again next cycle.
        let mut transient_skip = false;

        // Walk per-class snapshots of the pending-issue bitsets
        // oldest-first, minus the entries already proven stably blocked
        // (their wakeup is event-driven); the live bitsets are updated
        // as entries issue (no dispatches happen mid-issue, so a
        // snapshot cannot go stale the other way). The two walks are
        // independent: the classes contend for disjoint unit pools, and
        // only the integer queue holds memory instructions, so
        // splitting the walk leaves the data-cache access order
        // unchanged.
        let int_candidates = self.to_issue[RegClass::Int as usize]
            .and_not(&self.issue_blocked[RegClass::Int as usize]);
        if !int_candidates.is_empty() {
            int_candidates.for_each_in_window(head_seq, rob_len, &mut |seq| {
                if int_used >= int_units {
                    transient_skip = true;
                    return false;
                }
                let i = (seq - head_seq) as usize;
                let e = &self.rob[i];
                debug_assert!(e.in_iq && !e.issued);
                if e.earliest_issue > self.now {
                    transient_skip = true;
                    return true;
                }
                let is_mem = e.is_load || e.is_store;
                if is_mem && ldst_used >= ldst_ports {
                    transient_skip = true;
                    return true;
                }

                // Register-source readiness.
                let mut taints = RobSet::EMPTY;
                for dep in self.rob[i].deps {
                    if dep == NO_SEQ {
                        continue;
                    }
                    match self.dep_avail(dep) {
                        Ok(ts) => taints.union_with(&ts),
                        Err(blocker) => {
                            self.block_until(RegClass::Int, seq, dep, blocker);
                            return true;
                        }
                    }
                }

                // Memory ordering with oracle disambiguation (the
                // execution-driven simulator knows every effective address):
                // a load waits only for older stores to the same 8-byte
                // block, and forwards once that store completes. Independent
                // stores never block it. Only the store list is examined,
                // not the whole window.
                if self.rob[i].is_load {
                    let addr_block = self.rob[i].rec.eff_addr.map(|a| a & !7);
                    for &sseq in &self.stores {
                        if sseq >= seq {
                            break;
                        }
                        let s = &self.rob[(sseq - head_seq) as usize];
                        if s.rec.eff_addr.map(|a| a & !7) != addr_block {
                            continue;
                        }
                        if !s.done {
                            // Blocked on an incomplete older store.
                            self.block_until(RegClass::Int, seq, sseq, sseq);
                            return true;
                        }
                        taints.union_with(&s.taint);
                    }
                }

                int_used += 1;
                if is_mem {
                    ldst_used += 1;
                }
                let mut latency = self.rob[i].lat;
                let mut mem_extra = 0;
                if let Some(addr) = self.rob[i].rec.eff_addr {
                    if self.rob[i].is_load {
                        mem_extra = self.sim.mem.access_data(addr, false);
                        latency += mem_extra;
                    } else {
                        // Stores access the hierarchy for state/stats, but a
                        // write buffer hides their miss latency.
                        let _ = self.sim.mem.access_data(addr, true);
                    }
                }
                issued_any = true;
                self.finish_issue(i, seq, taints, latency, mem_extra);
                true
            });
        }

        let fp_candidates = self.to_issue[RegClass::Fp as usize]
            .and_not(&self.issue_blocked[RegClass::Fp as usize]);
        if !fp_candidates.is_empty() {
            fp_candidates.for_each_in_window(head_seq, rob_len, &mut |seq| {
                if fp_used >= fp_units {
                    transient_skip = true;
                    return false;
                }
                let i = (seq - head_seq) as usize;
                let e = &self.rob[i];
                debug_assert!(e.in_iq && !e.issued);
                if e.earliest_issue > self.now {
                    transient_skip = true;
                    return true;
                }
                let mut taints = RobSet::EMPTY;
                for dep in self.rob[i].deps {
                    if dep == NO_SEQ {
                        continue;
                    }
                    match self.dep_avail(dep) {
                        Ok(ts) => taints.union_with(&ts),
                        Err(blocker) => {
                            self.block_until(RegClass::Fp, seq, dep, blocker);
                            return true;
                        }
                    }
                }
                fp_used += 1;
                let latency = self.rob[i].lat;
                issued_any = true;
                self.finish_issue(i, seq, taints, latency, 0);
                true
            });
        }

        self.release_iq_slots();
        self.issue_idle = !issued_any && !transient_skip;
    }

    /// Issue-time state transition shared by the two class walks: stamp
    /// the entry, maintain the taint count and pending-issue bitset,
    /// schedule the writeback and apply the queue-slot release policy.
    fn finish_issue(&mut self, i: usize, seq: u64, taints: RobSet, latency: u64, mem_extra: u64) {
        let e = &mut self.rob[i];
        let was_tainted = !e.taint.is_empty();
        e.issued = true;
        e.complete_at = self.now + latency;
        e.mem_extra = mem_extra;
        e.taint = taints;
        let queue = e.queue;
        match (was_tainted, !taints.is_empty()) {
            (false, true) => self.tainted += 1,
            (true, false) => self.tainted -= 1,
            _ => {}
        }
        if !taints.is_empty() {
            // Register this entry with each taint's reverse index (all
            // taint members are in-flight seqs, hence in the window).
            let head_seq = self.rob.front().expect("issuing from a non-empty ROB").rec.seq;
            let len = self.rob.len();
            taints.for_each_in_window(head_seq, len, &mut |s| {
                self.taint_members[(s % RobSet::CAPACITY as u64) as usize].insert(seq);
                true
            });
        }
        self.to_issue[queue as usize].remove(seq);
        self.completions.schedule(self.now, self.now + latency, seq);
        // Queue-slot release policy per recovery scheme.
        let e = &mut self.rob[i];
        match self.sim.recovery {
            Recovery::Refetch => {
                e.in_iq = false;
                self.iq_occupancy[e.queue as usize] -= 1;
            }
            Recovery::Selective => {
                if e.taint.is_empty() && (!e.predicted || e.verified) {
                    e.in_iq = false;
                    self.iq_occupancy[e.queue as usize] -= 1;
                } else {
                    self.held_issued += 1;
                    self.held_slots.insert(seq);
                }
            }
            Recovery::Reissue => {
                // Released in release_iq_slots.
                self.held_issued += 1;
                self.held_slots.insert(seq);
            }
        }
    }

    /// Frees queue slots held by issued instructions once the recovery
    /// scheme allows. Skipped entirely while nothing holds a slot —
    /// the common case outside reissue recovery.
    fn release_iq_slots(&mut self) {
        if self.held_issued == 0 {
            return;
        }
        match self.sim.recovery {
            Recovery::Refetch => {}
            Recovery::Selective => {
                // Only current holders can transition; walk them alone.
                let holders = self.held_slots;
                let head_seq = self.rob.front().expect("holders imply a non-empty ROB").rec.seq;
                let len = self.rob.len();
                let mut released = 0usize;
                holders.for_each_in_window(head_seq, len, &mut |m| {
                    let e = &mut self.rob[(m - head_seq) as usize];
                    debug_assert!(e.in_iq && e.issued);
                    if e.taint.is_empty() && (!e.predicted || e.verified) {
                        e.in_iq = false;
                        self.iq_occupancy[e.queue as usize] -= 1;
                        self.held_slots.remove(m);
                        released += 1;
                    }
                    true
                });
                self.held_issued -= released;
            }
            Recovery::Reissue => {
                // Everything younger than an unverified prediction stays.
                let oldest_unverified =
                    self.rob.iter().filter(|e| e.predicted && !e.verified).map(|e| e.rec.seq).min();
                let mut released = 0usize;
                for e in &mut self.rob {
                    if e.in_iq && e.issued {
                        let held = oldest_unverified.is_some_and(|s| e.rec.seq > s);
                        if !held {
                            e.in_iq = false;
                            self.iq_occupancy[e.queue as usize] -= 1;
                            self.held_slots.remove(e.rec.seq);
                            released += 1;
                        }
                    }
                }
                self.held_issued -= released;
            }
        }
    }
}
