//! The out-of-order back end: wakeup/issue, writeback (completion,
//! verification, recovery dispatch) and in-order commit.
//!
//! The stages here are scan-free on their hot paths: issue walks the
//! pending-issue bitset instead of the whole ROB, completions come off
//! a time-ordered heap, loads disambiguate against the store list, and
//! queue/rename pressure is answered from incremental counters. Debug
//! builds cross-check all of these against full scans every few cycles
//! (see `Core::validate_summaries`).

use std::cmp::Reverse;

use rvp_isa::ExecClass;
use rvp_vpred::Scope;

use crate::core::Core;
use crate::recovery::RobSet;
use crate::scheme::{Recovery, Scheme};

impl<'s, 'p> Core<'s, 'p> {
    /// Availability of the value produced by `dep_seq` at the current
    /// cycle: `None` = not ready; `Some(taints)` = ready, carrying the
    /// given speculative taints.
    fn dep_avail(&self, dep_seq: u64) -> Option<RobSet> {
        let Some(i) = self.rob_index(dep_seq) else {
            // Younger than the ROB tail (squashed, awaiting refetch):
            // not available. Older than the head: committed long ago.
            let awaiting_refetch = self.rob.back().is_some_and(|t| dep_seq > t.rec.seq);
            return if awaiting_refetch { None } else { Some(RobSet::EMPTY) };
        };
        let p = &self.rob[i];
        if p.done {
            return Some(p.taint);
        }
        if p.predicted && !p.verified {
            // Consumers may read the old mapping (the predicted value)
            // once *that* value is ready.
            let mut taints = match p.pred_dep {
                None => RobSet::EMPTY,
                Some(q) => match self.rob_index(q) {
                    None => RobSet::EMPTY,
                    Some(qi) => {
                        let q = &self.rob[qi];
                        if !q.done {
                            return None;
                        }
                        q.taint
                    }
                },
            };
            taints.insert(dep_seq);
            return Some(taints);
        }
        None
    }

    // ------------------------------------------------------------------
    // Completion / verification / recovery
    // ------------------------------------------------------------------

    pub(crate) fn process_completions(&mut self) {
        // The heap yields due completions ordered by (cycle, seq); seq
        // order matters because older mispredicts must recover first.
        // Stale entries (invalidated or squashed since scheduling) are
        // recognized by re-validating against the ROB and skipped.
        while let Some(&Reverse((at, seq))) = self.completions.peek() {
            if at > self.now {
                break;
            }
            self.completions.pop();
            let Some(idx) = self.rob_index(seq) else { continue };
            {
                let e = &self.rob[idx];
                if e.done || e.complete_at != Some(self.now) {
                    continue;
                }
            }
            let e = &self.rob[idx];
            let stalled_fetch = e.stalled_fetch;
            let predicted = e.predicted;
            let pred_correct = e.pred_correct;
            let first_use = e.first_use;
            let (pc, is_load, dst, new_value) = (e.rec.pc, e.is_load, e.rec.dst, e.rec.new_value);

            self.rob[idx].done = true;

            // Buffer-based predictors (LVP, stride, context, hybrid)
            // train at writeback, when the result exists — the standard
            // modelling point between the paper's two alternatives
            // ("insert speculative values ... and possibly pollute it, or
            // hold off inserting values until they become
            // non-speculative, forcing new instructions to possibly use
            // stale entries"): entries lag in-flight work by a few
            // cycles, and squashed-then-replayed instructions retrain.
            if let (Scheme::Lvp { scope, .. } | Scheme::Buffer { scope, .. }, Some(_)) =
                (&self.sim.scheme, dst)
            {
                if scope.admits(is_load, true) {
                    self.sim.buffer.as_mut().expect("buffer state").train(pc, new_value);
                }
            }

            if stalled_fetch {
                self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
                if self.stalled_on == Some(seq) {
                    self.stalled_on = None;
                }
            }

            if predicted {
                self.rob[idx].verified = true;
                if pred_correct {
                    self.clear_taint(seq);
                } else if let Some(fu) = first_use {
                    self.stats.costly_mispredictions += 1;
                    if let Some(table) = &mut self.pc_table {
                        table.record_costly(pc);
                    }
                    match self.sim.recovery {
                        Recovery::Refetch => {
                            // Younger completions due this cycle whose
                            // entries get squashed are skipped by the
                            // heap re-validation above.
                            self.squash_from(fu);
                        }
                        Recovery::Reissue | Recovery::Selective => {
                            self.invalidate_dependents(seq);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    pub(crate) fn commit(&mut self) {
        for _ in 0..self.sim.config.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || !head.taint.is_empty() || (head.predicted && !head.verified) {
                break;
            }
            let e = self.rob.pop_front().expect("non-empty");
            debug_assert!(!self.to_issue.contains(e.rec.seq), "committing unissued entry");
            if e.in_iq {
                self.iq_occupancy[e.queue as usize] -= 1;
                if e.issued_at.is_some() {
                    self.held_issued -= 1;
                }
            }
            if e.is_store {
                debug_assert_eq!(self.stores.front(), Some(&e.rec.seq));
                self.stores.pop_front();
            }
            self.stats.committed += 1;
            self.last_commit_cycle = self.now;
            if e.is_load {
                self.stats.loads += 1;
            }
            if e.predicted {
                self.stats.predictions += 1;
                if e.pred_correct {
                    self.stats.correct_predictions += 1;
                }
                if let Some(table) = &mut self.pc_table {
                    table.record_commit(e.rec.pc, e.pred_correct);
                }
            }
            if let Some(dst) = e.rec.dst {
                self.writers[dst.class() as usize] -= 1;
                if self.last_writer[dst.index()] == Some(e.rec.seq) {
                    self.last_writer[dst.index()] = None;
                }
            }
            // Train value predictors with architectural outcomes. (The
            // branch predictor trains at fetch with immediate resolution —
            // perfect history repair, the trace-driven idealization — so
            // branch behaviour is identical across value-prediction
            // schemes.)
            if let Some(dst) = e.rec.dst {
                let in_scope = |scope: Scope| scope.admits(e.is_load, true);
                match (&self.sim.scheme, e.pred_value) {
                    // Buffer predictors train speculatively at dispatch.
                    (Scheme::DynamicRvp { scope, .. }, Some(v)) if in_scope(*scope) => {
                        self.sim
                            .drvp
                            .as_mut()
                            .expect("drvp state")
                            .train(e.rec.pc, v == e.rec.new_value);
                    }
                    (Scheme::Gabbay { scope }, _) if in_scope(*scope) => {
                        self.sim
                            .gabbay
                            .as_mut()
                            .expect("gabbay state")
                            .train(dst, e.rec.old_value == e.rec.new_value);
                    }
                    (Scheme::HwCorrelation { scope, .. }, pv) if in_scope(*scope) => {
                        let hit = pv == Some(e.rec.new_value);
                        self.sim.correlation.as_mut().expect("correlation state").train(
                            e.rec.pc,
                            hit,
                            e.corr_observed,
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    pub(crate) fn issue(&mut self) {
        let cfg = &self.sim.config;
        let (mut int_used, mut fp_used, mut ldst_used) = (0usize, 0usize, 0usize);
        let lat = cfg.lat;
        let (int_units, fp_units, ldst_ports) = (cfg.int_units, cfg.fp_units, cfg.ldst_ports);

        let Some(head_seq) = self.rob.front().map(|e| e.rec.seq) else {
            return;
        };
        let rob_len = self.rob.len();
        // Walk a snapshot of the pending-issue bitset oldest-first; the
        // live bitset is updated as entries issue (no dispatches happen
        // mid-issue, so the snapshot cannot go stale the other way).
        let candidates = self.to_issue;
        candidates.for_each_in_window(head_seq, rob_len, &mut |seq| {
            if int_used >= int_units && fp_used >= fp_units {
                return false;
            }
            let i = (seq - head_seq) as usize;
            let e = &self.rob[i];
            debug_assert!(e.in_iq && e.issued_at.is_none());
            if e.earliest_issue > self.now {
                return true;
            }
            // Functional-unit availability.
            let exec = e.exec;
            let is_mem = matches!(exec, ExecClass::Load | ExecClass::Store);
            let is_fp = matches!(exec, ExecClass::FpAdd | ExecClass::FpMul | ExecClass::FpDiv);
            if is_fp {
                if fp_used >= fp_units {
                    return true;
                }
            } else if int_used >= int_units || (is_mem && ldst_used >= ldst_ports) {
                return true;
            }

            // Register-source readiness.
            let mut taints = RobSet::EMPTY;
            for dep in self.rob[i].deps.into_iter().flatten() {
                match self.dep_avail(dep) {
                    Some(ts) => taints.union_with(&ts),
                    None => return true,
                }
            }

            // Memory ordering with oracle disambiguation (the
            // execution-driven simulator knows every effective address):
            // a load waits only for older stores to the same 8-byte
            // block, and forwards once that store completes. Independent
            // stores never block it. Only the store list is examined,
            // not the whole window.
            if self.rob[i].is_load {
                let addr_block = self.rob[i].rec.eff_addr.map(|a| a & !7);
                for &sseq in &self.stores {
                    if sseq >= seq {
                        break;
                    }
                    let s = &self.rob[(sseq - head_seq) as usize];
                    if s.rec.eff_addr.map(|a| a & !7) != addr_block {
                        continue;
                    }
                    if !s.done {
                        return true; // blocked on an incomplete older store
                    }
                    taints.union_with(&s.taint);
                }
            }

            // Issue.
            if is_fp {
                fp_used += 1;
            } else {
                int_used += 1;
                if is_mem {
                    ldst_used += 1;
                }
            }
            let mut latency = match exec {
                ExecClass::IntAlu => lat.int_alu,
                ExecClass::IntMul => lat.int_mul,
                ExecClass::IntDiv => lat.int_div,
                ExecClass::FpAdd => lat.fp_add,
                ExecClass::FpMul => lat.fp_mul,
                ExecClass::FpDiv => lat.fp_div,
                ExecClass::Load => lat.load,
                ExecClass::Store => lat.store,
            };
            let mut mem_extra = 0;
            if let Some(addr) = self.rob[i].rec.eff_addr {
                if self.rob[i].is_load {
                    mem_extra = self.sim.mem.access_data(addr, false);
                    latency += mem_extra;
                } else {
                    // Stores access the hierarchy for state/stats, but a
                    // write buffer hides their miss latency.
                    let _ = self.sim.mem.access_data(addr, true);
                }
            }
            let e = &mut self.rob[i];
            let was_tainted = !e.taint.is_empty();
            e.issued_at = Some(self.now);
            e.complete_at = Some(self.now + latency);
            e.mem_extra = mem_extra;
            e.taint = taints;
            match (was_tainted, !taints.is_empty()) {
                (false, true) => self.tainted += 1,
                (true, false) => self.tainted -= 1,
                _ => {}
            }
            self.to_issue.remove(seq);
            self.completions.push(Reverse((self.now + latency, seq)));
            // Queue-slot release policy per recovery scheme.
            let e = &mut self.rob[i];
            match self.sim.recovery {
                Recovery::Refetch => {
                    e.in_iq = false;
                    self.iq_occupancy[e.queue as usize] -= 1;
                }
                Recovery::Selective => {
                    if e.taint.is_empty() && (!e.predicted || e.verified) {
                        e.in_iq = false;
                        self.iq_occupancy[e.queue as usize] -= 1;
                    } else {
                        self.held_issued += 1;
                    }
                }
                Recovery::Reissue => {
                    // Released in release_iq_slots.
                    self.held_issued += 1;
                }
            }
            true
        });
        self.release_iq_slots();
    }

    /// Frees queue slots held by issued instructions once the recovery
    /// scheme allows. Skipped entirely while nothing holds a slot —
    /// the common case outside reissue recovery.
    fn release_iq_slots(&mut self) {
        if self.held_issued == 0 {
            return;
        }
        match self.sim.recovery {
            Recovery::Refetch => {}
            Recovery::Selective => {
                let mut released = 0usize;
                for e in &mut self.rob {
                    if e.in_iq
                        && e.issued_at.is_some()
                        && e.taint.is_empty()
                        && (!e.predicted || e.verified)
                    {
                        e.in_iq = false;
                        self.iq_occupancy[e.queue as usize] -= 1;
                        released += 1;
                    }
                }
                self.held_issued -= released;
            }
            Recovery::Reissue => {
                // Everything younger than an unverified prediction stays.
                let oldest_unverified =
                    self.rob.iter().filter(|e| e.predicted && !e.verified).map(|e| e.rec.seq).min();
                let mut released = 0usize;
                for e in &mut self.rob {
                    if e.in_iq && e.issued_at.is_some() {
                        let held = oldest_unverified.is_some_and(|s| e.rec.seq > s);
                        if !held {
                            e.in_iq = false;
                            self.iq_occupancy[e.queue as usize] -= 1;
                            released += 1;
                        }
                    }
                }
                self.held_issued -= released;
            }
        }
    }
}
