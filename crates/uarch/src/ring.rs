//! Fixed-capacity queues for the cycle loop.
//!
//! The frontend, ROB and store queues used to be plain `VecDeque`s that
//! started empty and doubled on demand, so the first thousands of
//! cycles of every run interleaved simulation with reallocation, and
//! nothing *guaranteed* the steady state stayed allocation-free. A
//! [`BoundedDeque`] is a ring buffer whose backing storage is sized
//! once at construction and never grows: `push_back` asserts the bound
//! instead of reallocating, so staying within capacity — which the
//! structural limits of the machine enforce for the ROB and store
//! queues, and fetch backpressure enforces for the frontend — is a
//! checked invariant rather than a hope. The zero-allocation window
//! test in `tests/alloc_gate.rs` pins the result.

use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};

/// A ring buffer with a hard capacity fixed at construction.
///
/// Dereferences to [`VecDeque`] for everything except insertion, which
/// is guarded: pushing beyond the bound is a bug in the caller's
/// occupancy accounting, not a cue to reallocate.
#[derive(Debug)]
pub(crate) struct BoundedDeque<T> {
    q: VecDeque<T>,
    bound: usize,
}

impl<T> BoundedDeque<T> {
    /// An empty queue that can hold at most `bound` elements.
    pub(crate) fn with_bound(bound: usize) -> BoundedDeque<T> {
        BoundedDeque { q: VecDeque::with_capacity(bound), bound }
    }

    /// Whether the queue is at its bound (insertion would be refused).
    #[inline]
    pub(crate) fn is_full(&self) -> bool {
        self.q.len() >= self.bound
    }

    /// Appends `value`. Every producer checks [`BoundedDeque::is_full`]
    /// (or a structural-occupancy counter that implies it, like the
    /// dispatch stage's ROB-size check) before pushing; debug builds
    /// assert the bound, and the zero-allocation gate test would catch
    /// a release-mode overflow as queue growth.
    #[inline]
    pub(crate) fn push_back(&mut self, value: T) {
        debug_assert!(!self.is_full(), "bounded queue overflow (bound {})", self.bound);
        self.q.push_back(value);
    }
}

impl<T> Deref for BoundedDeque<T> {
    type Target = VecDeque<T>;

    fn deref(&self) -> &VecDeque<T> {
        &self.q
    }
}

impl<T> DerefMut for BoundedDeque<T> {
    fn deref_mut(&mut self) -> &mut VecDeque<T> {
        &mut self.q
    }
}

impl<'a, T> IntoIterator for &'a BoundedDeque<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.q.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut BoundedDeque<T> {
    type Item = &'a mut T;
    type IntoIter = std::collections::vec_deque::IterMut<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.q.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_reallocates_within_bound() {
        let mut q: BoundedDeque<u64> = BoundedDeque::with_bound(8);
        let cap = q.capacity();
        for round in 0..5 {
            for i in 0..8 {
                q.push_back(round * 8 + i);
            }
            assert!(q.is_full());
            for i in 0..8 {
                assert_eq!(q.pop_front(), Some(round * 8 + i));
            }
        }
        assert_eq!(q.capacity(), cap);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut q: BoundedDeque<u8> = BoundedDeque::with_bound(2);
        q.push_back(1);
        q.push_back(2);
        q.push_back(3);
    }
}
