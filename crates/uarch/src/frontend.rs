//! The front end: fetch from the committed-stream source, plus
//! dispatch (rename, queue insertion and the value-prediction decision
//! point).
//!
//! Fetch consumes [`crate::source::CommittedSource`] records — peeking
//! first so the I-cache model can reject a line without losing the
//! record — and dispatch moves them into the ROB, answering all
//! structural-hazard questions (queue occupancy, rename pressure) from
//! the core's incremental counters.

use rvp_bpred::BranchKind;
use rvp_emu::Committed;
use rvp_isa::{Flow, Program, Reg, RegClass};
use rvp_vpred::ReuseKind;

use crate::core::{Core, Entry, Fetched, Redirect};
use crate::recovery::RobSet;
use crate::scheme::Scheme;

impl<'s, 'p> Core<'s, 'p> {
    // ------------------------------------------------------------------
    // Dispatch (rename + queue insertion + value prediction)
    // ------------------------------------------------------------------

    pub(crate) fn dispatch(&mut self) {
        let mut nonload_preds_this_cycle = 0usize;
        for _ in 0..self.sim.config.dispatch_width {
            let Some(f) = self.frontend.front() else { break };
            if f.arrival > self.now {
                break;
            }
            if self.rob.len() >= self.sim.config.rob_size {
                self.dispatch_blocked = true;
                break;
            }
            let inst = &self.program.insts()[f.rec.pc];
            let queue = inst.queue_class();
            if self.iq_occupancy[queue as usize]
                >= if queue == RegClass::Int {
                    self.sim.config.iq_int
                } else {
                    self.sim.config.iq_fp
                }
            {
                self.dispatch_blocked = true;
                break;
            }
            if let Some(dst) = f.rec.dst {
                if self.writers[dst.class() as usize] >= self.sim.config.rename_regs {
                    self.dispatch_blocked = true;
                    break;
                }
            }
            let Fetched { rec, stalled, .. } = self.frontend.pop_front().expect("non-empty");

            // Source dependences on in-flight producers.
            let mut deps = [None, None];
            for (k, src) in inst.srcs().into_iter().enumerate() {
                if let Some(r) = src {
                    if !r.is_zero() {
                        deps[k] = self.last_writer[r.index()];
                    }
                }
            }

            // Value prediction decision. Predicted non-loads need an
            // extra register read port to fetch the old value for
            // verification; a configured port count caps them per cycle.
            let (mut predicted, pred_value, pred_dep) = self.predict(&rec, inst.is_load());
            if predicted && !inst.is_load() {
                match self.sim.config.pred_ports {
                    Some(ports) if nonload_preds_this_cycle >= ports => predicted = false,
                    _ => nonload_preds_this_cycle += 1,
                }
            }
            let pred_correct = pred_value == Some(rec.new_value);

            // Mark first use on speculative producers.
            if self.sim.scheme.is_predicting() {
                let my_seq = rec.seq;
                for dep in deps.into_iter().flatten() {
                    if let Some(pi) = self.rob_index(dep) {
                        let p = &mut self.rob[pi];
                        if p.predicted && !p.verified && p.first_use.is_none() {
                            p.first_use = Some(my_seq);
                        }
                    }
                }
            }

            // Hardware correlation learning: which same-class register
            // holds the value this instruction is producing (preferring
            // the destination itself — plain same-register reuse).
            let corr_observed = match (&self.sim.scheme, rec.dst) {
                (Scheme::HwCorrelation { scope, .. }, Some(dst))
                    if scope.admits(inst.is_load(), true) =>
                {
                    if rec.old_value == rec.new_value {
                        Some(dst)
                    } else {
                        (0..rvp_isa::NUM_REGS_PER_CLASS)
                            .map(|n| Reg::new(dst.class(), n))
                            .find(|r| !r.is_zero() && self.shadow[r.index()] == rec.new_value)
                    }
                }
                _ => None,
            };

            // Shadow state (with rollback info for refetch squashes).
            let mut prev_last_value = None;
            let mut had_last_value = false;
            if let Some(dst) = rec.dst {
                self.shadow[dst.index()] = rec.new_value;
                self.last_writer[dst.index()] = Some(rec.seq);
                prev_last_value = self.last_value[rec.pc];
                had_last_value = prev_last_value.is_some();
                self.last_value[rec.pc] = Some(rec.new_value);
                self.last_instance[rec.pc] = Some(rec.seq);
                self.writers[dst.class() as usize] += 1;
            }
            self.iq_occupancy[queue as usize] += 1;
            self.to_issue.insert(rec.seq);
            if inst.is_store() {
                self.stores.push_back(rec.seq);
            }

            self.rob.push_back(Entry {
                rec,
                queue,
                exec: inst.exec_class(),
                is_store: inst.is_store(),
                is_load: inst.is_load(),
                deps,
                in_iq: true,
                issued_at: None,
                complete_at: None,
                done: false,
                earliest_issue: 0,
                mem_extra: 0,
                reissued: false,
                taint: RobSet::EMPTY,
                predicted: predicted && pred_value.is_some(),
                pred_value,
                pred_correct,
                pred_dep,
                verified: false,
                first_use: None,
                corr_observed,
                stalled_fetch: stalled,
                prev_last_value: prev_last_value.or(Some(0)).filter(|_| had_last_value),
                had_last_value,
            });
        }
    }

    /// Scheme-specific prediction at rename time. Returns
    /// `(predict?, candidate value, producer gating the value's
    /// availability)`. The candidate is computed for *every* in-scope
    /// instruction so confidence counters can train on unpredicted ones.
    fn predict(&mut self, rec: &Committed, is_load: bool) -> (bool, Option<u64>, Option<u64>) {
        let Some(dst) = rec.dst else { return (false, None, None) };
        let old_mapping = |core: &Core<'_, '_>| core.last_writer[dst.index()];

        match &self.sim.scheme {
            Scheme::NoPredict => (false, None, None),
            Scheme::Lvp { scope, .. } | Scheme::Buffer { scope, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                // The buffer supplies the value directly: no register
                // dependence at all.
                let v = self.sim.buffer.as_ref().expect("buffer state").predict(rec.pc);
                (v.is_some(), v, None)
            }
            Scheme::StaticRvp { plan } => {
                let Some(kind) = plan.kind(rec.pc) else { return (false, None, None) };
                let (v, dep) = self.reuse_value(rec, dst, kind);
                (true, Some(v), dep)
            }
            Scheme::DynamicRvp { scope, plan, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let kind = plan.kind(rec.pc).unwrap_or(ReuseKind::SameReg);
                let (v, dep) = self.reuse_value(rec, dst, kind);
                let confident = self.sim.drvp.as_ref().expect("drvp state").confident(rec.pc);
                (confident, Some(v), dep)
            }
            Scheme::Gabbay { scope } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let confident = self.sim.gabbay.as_ref().expect("gabbay state").confident(dst);
                (confident, Some(rec.old_value), old_mapping(self))
            }
            Scheme::HwCorrelation { scope, .. } => {
                if !scope.admits(is_load, true) {
                    return (false, None, None);
                }
                let p = self.sim.correlation.as_ref().expect("correlation state");
                match p.candidate(rec.pc) {
                    Some(r) if r.class() == dst.class() => {
                        let value = if r == dst { rec.old_value } else { self.shadow[r.index()] };
                        (p.confident(rec.pc), Some(value), self.last_writer[r.index()])
                    }
                    _ => (false, None, None),
                }
            }
        }
    }

    /// The value a register-reuse relation predicts, and the in-flight
    /// producer whose completion makes it readable.
    fn reuse_value(&self, rec: &Committed, dst: Reg, kind: ReuseKind) -> (u64, Option<u64>) {
        match kind {
            ReuseKind::SameReg => (rec.old_value, self.last_writer[dst.index()]),
            ReuseKind::OtherReg(r) => (self.shadow[r.index()], self.last_writer[r.index()]),
            // The compiler gave the instruction an exclusive register, so
            // after the first execution the register holds the last
            // value; its old mapping is this instruction's *previous
            // dynamic instance*, which has almost always completed.
            ReuseKind::LastValue => {
                (self.last_value[rec.pc].unwrap_or(rec.old_value), self.last_instance[rec.pc])
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    pub(crate) fn fetch(&mut self) -> Result<(), crate::stats::SimError> {
        if self.now < self.fetch_resume_at || self.stalled_on.is_some() {
            if !self.halted_fetch {
                self.stats.fetch_stall_cycles += 1;
            }
            return Ok(());
        }
        if self.halted_fetch {
            return Ok(());
        }
        let mut taken_blocks = 0usize;
        let arrival = self.now + self.sim.config.frontend_depth;

        for _ in 0..self.sim.config.fetch_width {
            if !self.may_pull() {
                break;
            }
            let Some(&Committed { pc, .. }) = self.source.peek()? else {
                self.trace_done = true;
                break;
            };

            // Instruction-cache access per new line; a missing line
            // leaves the peeked record in the source for next time.
            let line = Program::byte_addr(pc) / self.sim.config.mem.l1i.line_bytes;
            if line != self.last_line {
                let extra = self.sim.mem.access_inst(Program::byte_addr(pc));
                self.last_line = line;
                if extra > 0 {
                    self.fetch_resume_at = self.now + extra;
                    self.redirect = Redirect::ICache;
                    break;
                }
            }

            let rec = self.source.next_record()?.expect("peeked record is consumable");
            self.note_consumed(rec.seq);
            let inst = &self.program.insts()[rec.pc];

            if matches!(inst.kind, rvp_isa::Kind::Halt) {
                self.halted_fetch = true;
                self.frontend.push_back(Fetched { rec, arrival, stalled: false });
                break;
            }

            let bkind = match inst.flow() {
                Flow::FallThrough => None,
                Flow::Always(t) => {
                    if inst.is_call() {
                        Some(BranchKind::Call { target: t })
                    } else {
                        Some(BranchKind::UncondDirect { target: t })
                    }
                }
                Flow::Conditional(t) => Some(BranchKind::CondDirect { target: t }),
                Flow::Indirect(_) => Some(BranchKind::Indirect),
                Flow::Return => Some(BranchKind::Return),
                Flow::Halt => None,
            };

            let Some(kind) = bkind else {
                self.frontend.push_back(Fetched { rec, arrival, stalled: false });
                continue;
            };

            // Predict and train in one step (perfect history repair):
            // branch-predictor behaviour is then identical across value-
            // prediction schemes, isolating the effect under study.
            let actual_taken = rec.taken.unwrap_or(true);
            let correct = self.sim.bpred.update(rec.pc, kind, actual_taken, rec.next_pc);

            if !correct {
                // Fetch goes down the wrong path: bubble until resolve.
                self.stalled_on = Some(rec.seq);
                self.redirect = Redirect::Branch;
                self.frontend.push_back(Fetched { rec, arrival, stalled: true });
                break;
            }
            self.frontend.push_back(Fetched { rec, arrival, stalled: false });
            if actual_taken {
                taken_blocks += 1;
                if taken_blocks >= self.sim.config.fetch_blocks {
                    break;
                }
            }
        }
        Ok(())
    }
}
