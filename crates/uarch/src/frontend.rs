//! The front end: fetch from the committed-stream source, plus
//! dispatch (rename, queue insertion and the value-prediction decision
//! point).
//!
//! Fetch consumes [`crate::source::CommittedSource`] records — peeking
//! first so the I-cache model can reject a line without losing the
//! record — and dispatch moves them into the ROB, answering all
//! structural-hazard questions (queue occupancy, rename pressure) from
//! the core's incremental counters. Neither stage touches
//! [`rvp_isa::Inst`]: every static property (classes, sources, branch
//! kind, prediction mode) comes from the dense per-PC table built in
//! [`crate::meta`].

use rvp_emu::Committed;
use rvp_isa::{Reg, RegClass};
use rvp_vpred::{Decision, ReuseKind};

use crate::core::{Core, Entry, Fetched, Redirect, NO_CYCLE, NO_SEQ};
use crate::meta::{PredMode, NO_SRC};
use crate::recovery::RobSet;
use crate::source::CommittedSource;

impl<'s, S: CommittedSource + ?Sized> Core<'s, S> {
    // ------------------------------------------------------------------
    // Dispatch (rename + queue insertion + value prediction)
    // ------------------------------------------------------------------

    pub(crate) fn dispatch(&mut self) {
        let mut nonload_preds_this_cycle = 0usize;
        for _ in 0..self.sim.config.dispatch_width {
            let Some(f) = self.frontend.front() else { break };
            if f.arrival > self.now {
                break;
            }
            if self.rob.len() >= self.sim.config.rob_size {
                self.dispatch_blocked = true;
                break;
            }
            let m = self.meta[f.rec.pc];
            if self.iq_occupancy[m.queue as usize]
                >= if m.queue == RegClass::Int {
                    self.sim.config.iq_int
                } else {
                    self.sim.config.iq_fp
                }
            {
                self.dispatch_blocked = true;
                break;
            }
            if let Some(dst) = f.rec.dst {
                if self.writers[dst.class() as usize] >= self.sim.config.rename_regs {
                    self.dispatch_blocked = true;
                    break;
                }
            }
            let Fetched { rec, stalled, .. } = self.frontend.pop_front().expect("non-empty");

            // Source dependences on in-flight producers.
            let mut deps = [NO_SEQ, NO_SEQ];
            for (k, &src) in m.srcs.iter().enumerate() {
                if src != NO_SRC {
                    deps[k] = self.last_writer[src as usize].unwrap_or(NO_SEQ);
                }
            }

            // Value prediction decision. Predicted non-loads need an
            // extra register read port to fetch the old value for
            // verification; a configured port count caps them per cycle.
            let (mut predicted, pred_value, pred_dep) = self.predict(&rec, m.mode);
            if predicted && !m.is_load {
                match self.sim.config.pred_ports {
                    Some(ports) if nonload_preds_this_cycle >= ports => predicted = false,
                    _ => nonload_preds_this_cycle += 1,
                }
            }
            let pred_correct = pred_value == Some(rec.new_value);

            // Mark first use on speculative producers.
            if self.sim.scheme.is_predicting() {
                let my_seq = rec.seq;
                for dep in deps {
                    if dep == NO_SEQ {
                        continue;
                    }
                    if let Some(pi) = self.rob_index(dep) {
                        let p = &mut self.rob[pi];
                        if p.predicted && !p.verified && p.first_use == NO_SEQ {
                            p.first_use = my_seq;
                        }
                    }
                }
            }

            // Hardware correlation learning: which same-class register
            // holds the value this instruction is producing (preferring
            // the destination itself — plain same-register reuse).
            let corr_observed = match rec.dst {
                Some(dst) if m.corr_learn => {
                    if rec.old_value == rec.new_value {
                        Some(dst)
                    } else {
                        (0..rvp_isa::NUM_REGS_PER_CLASS)
                            .map(|n| Reg::new(dst.class(), n))
                            .find(|r| !r.is_zero() && self.shadow[r.index()] == rec.new_value)
                    }
                }
                _ => None,
            };

            // Shadow state (with rollback info for refetch squashes).
            let mut prev_last_value = 0u64;
            let mut had_last_value = false;
            if let Some(dst) = rec.dst {
                self.shadow[dst.index()] = rec.new_value;
                self.last_writer[dst.index()] = Some(rec.seq);
                if let Some(v) = self.last_value[rec.pc] {
                    prev_last_value = v;
                    had_last_value = true;
                }
                self.last_value[rec.pc] = Some(rec.new_value);
                self.last_instance[rec.pc] = Some(rec.seq);
                self.writers[dst.class() as usize] += 1;
            }
            self.iq_occupancy[m.queue as usize] += 1;
            self.to_issue[m.queue as usize].insert(rec.seq);
            // A fresh entry means the issue stage has work again; its
            // ROB slot may carry a stale blocked bit from a squashed
            // previous occupant.
            self.issue_blocked[0].remove(rec.seq);
            self.issue_blocked[1].remove(rec.seq);
            self.issue_idle = false;
            if m.is_store {
                self.stores.push_back(rec.seq);
            }

            self.rob.push_back(Entry {
                rec,
                queue: m.queue,
                is_store: m.is_store,
                is_load: m.is_load,
                lat: m.lat,
                deps,
                in_iq: true,
                issued: false,
                complete_at: NO_CYCLE,
                done: false,
                earliest_issue: 0,
                mem_extra: 0,
                reissued: false,
                taint: RobSet::EMPTY,
                predicted: predicted && pred_value.is_some(),
                pred_value,
                pred_correct,
                pred_dep: pred_dep.unwrap_or(NO_SEQ),
                verified: false,
                first_use: NO_SEQ,
                corr_observed,
                stalled_fetch: stalled,
                prev_last_value,
                had_last_value,
            });
        }
    }

    /// The prediction decision at rename time: the per-PC [`PredMode`]
    /// (resolved ahead of time in [`crate::meta`]) gates whether the
    /// scheme's [`rvp_vpred::ValuePredictor`] is consulted at all, and
    /// its [`Decision`] is resolved against machine state here. Returns
    /// `(predict?, candidate value, producer gating the value's
    /// availability)`. The candidate is carried for *every* tracked
    /// instruction so confidence counters can train on unpredicted ones.
    fn predict(&mut self, rec: &Committed, mode: PredMode) -> (bool, Option<u64>, Option<u64>) {
        let PredMode::On(kind) = mode else {
            return (false, None, None);
        };
        let dst = rec.dst.expect("a predicting mode implies a written destination");
        let decision = self
            .sim
            .scheme
            .predictor
            .as_mut()
            .expect("a predicting mode implies a predictor")
            .decide(rec.pc, dst);

        match decision {
            Decision::Idle => (false, None, None),
            Decision::Track => {
                let (v, dep) = self.reuse_value(rec, dst, kind);
                (false, Some(v), dep)
            }
            Decision::Predict => {
                let (v, dep) = self.reuse_value(rec, dst, kind);
                (true, Some(v), dep)
            }
            // The buffer supplies the value directly: no register
            // dependence at all.
            Decision::Value(v) => (true, Some(v), None),
            Decision::TrackReg(r) | Decision::PredictReg(r) => {
                let value = if r == dst { rec.old_value } else { self.shadow[r.index()] };
                let predict = matches!(decision, Decision::PredictReg(_));
                (predict, Some(value), self.last_writer[r.index()])
            }
        }
    }

    /// The value a register-reuse relation predicts, and the in-flight
    /// producer whose completion makes it readable.
    fn reuse_value(&self, rec: &Committed, dst: Reg, kind: ReuseKind) -> (u64, Option<u64>) {
        match kind {
            ReuseKind::SameReg => (rec.old_value, self.last_writer[dst.index()]),
            ReuseKind::OtherReg(r) => (self.shadow[r.index()], self.last_writer[r.index()]),
            // The compiler gave the instruction an exclusive register, so
            // after the first execution the register holds the last
            // value; its old mapping is this instruction's *previous
            // dynamic instance*, which has almost always completed.
            ReuseKind::LastValue => {
                (self.last_value[rec.pc].unwrap_or(rec.old_value), self.last_instance[rec.pc])
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    pub(crate) fn fetch(&mut self) -> Result<(), crate::stats::SimError> {
        if self.now < self.fetch_resume_at || self.stalled_on.is_some() {
            if !self.halted_fetch {
                self.stats.fetch_stall_cycles += 1;
            }
            return Ok(());
        }
        if self.halted_fetch {
            return Ok(());
        }
        let mut taken_blocks = 0usize;
        let arrival = self.now + self.sim.config.frontend_depth;

        for _ in 0..self.sim.config.fetch_width {
            if !self.may_pull() || self.frontend.is_full() {
                break;
            }
            let Some(pc) = self.source.peek_pc()? else {
                self.trace_done = true;
                break;
            };

            // Instruction-cache access per new line; a missing line
            // leaves the peeked record in the source for next time.
            let line = self.meta[pc].line;
            if line != self.last_line {
                let extra = self.sim.mem.access_inst(rvp_isa::Program::byte_addr(pc));
                self.last_line = line;
                if extra > 0 {
                    self.fetch_resume_at = self.now + extra;
                    self.redirect = Redirect::ICache;
                    break;
                }
            }

            let rec = self.source.next_record()?.expect("peeked record is consumable");
            self.note_consumed(rec.seq);
            let m = &self.meta[rec.pc];

            if m.is_halt {
                self.halted_fetch = true;
                self.frontend.push_back(Fetched { rec, arrival, stalled: false });
                break;
            }

            let Some(kind) = m.bkind else {
                self.frontend.push_back(Fetched { rec, arrival, stalled: false });
                continue;
            };

            // Predict and train in one step (perfect history repair):
            // branch-predictor behaviour is then identical across value-
            // prediction schemes, isolating the effect under study.
            let actual_taken = rec.taken.unwrap_or(true);
            let correct = self.sim.bpred.update(rec.pc, kind, actual_taken, rec.next_pc);

            if !correct {
                // Fetch goes down the wrong path: bubble until resolve.
                self.stalled_on = Some(rec.seq);
                self.redirect = Redirect::Branch;
                self.frontend.push_back(Fetched { rec, arrival, stalled: true });
                break;
            }
            self.frontend.push_back(Fetched { rec, arrival, stalled: false });
            if actual_taken {
                taken_blocks += 1;
                if taken_blocks >= self.sim.config.fetch_blocks {
                    break;
                }
            }
        }
        Ok(())
    }
}
