//! Value-misprediction recovery (Section 4.3 of the paper) and the
//! taint bitset the dependence-chain bookkeeping is built on.
//!
//! A *taint* is the seq of an unverified predicted producer that an
//! entry's current result transitively depends on. Taints only ever
//! reference instructions currently in the ROB (a predicted producer
//! cannot commit unverified, and a squash removes its dependents), so a
//! set of them fits a fixed-width bitset indexed by `seq % 256` —
//! [`RobSet`] — which replaces the per-entry `Vec<u64>` clones that used
//! to allocate on every dependence-chain walk. `Simulator` asserts
//! `rob_size <= RobSet::CAPACITY` so two live seqs can never collide.

use rvp_isa::NUM_REGS;

use crate::core::{Core, Redirect, NO_CYCLE, NO_SEQ};
use crate::source::CommittedSource;

/// A set of in-flight instruction seqs, as a 256-bit mask over ROB
/// slots (`seq % 256`). Because all members are seqs of instructions
/// simultaneously in a ROB of at most 256 entries, distinct members
/// always map to distinct bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct RobSet {
    bits: [u64; 4],
}

impl RobSet {
    /// The empty set.
    pub(crate) const EMPTY: RobSet = RobSet { bits: [0; 4] };
    /// Maximum ROB size this representation supports.
    pub(crate) const CAPACITY: usize = 256;

    #[inline]
    fn slot(seq: u64) -> (usize, u64) {
        let s = (seq % Self::CAPACITY as u64) as usize;
        (s >> 6, 1u64 << (s & 63))
    }

    #[inline]
    pub(crate) fn insert(&mut self, seq: u64) {
        let (w, m) = Self::slot(seq);
        self.bits[w] |= m;
    }

    /// Removes `seq`; returns whether it was present.
    #[inline]
    pub(crate) fn remove(&mut self, seq: u64) -> bool {
        let (w, m) = Self::slot(seq);
        let was = self.bits[w] & m != 0;
        self.bits[w] &= !m;
        was
    }

    #[inline]
    pub(crate) fn contains(&self, seq: u64) -> bool {
        let (w, m) = Self::slot(seq);
        self.bits[w] & m != 0
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.bits == [0; 4]
    }

    #[inline]
    pub(crate) fn union_with(&mut self, other: &RobSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits) {
            *a |= b;
        }
    }

    /// Removes every member of `other` from `self`.
    #[inline]
    pub(crate) fn subtract(&mut self, other: &RobSet) {
        for (a, b) in self.bits.iter_mut().zip(other.bits) {
            *a &= !b;
        }
    }

    /// The members of `self` not in `other`.
    #[inline]
    pub(crate) fn and_not(mut self, other: &RobSet) -> RobSet {
        self.subtract(other);
        self
    }

    #[cfg(debug_assertions)]
    pub(crate) fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Visits the set members in the seq window `[head_seq,
    /// head_seq + len)` in ascending seq order; stops early when `f`
    /// returns `false`. `len` must be at most [`RobSet::CAPACITY`].
    #[inline]
    pub(crate) fn for_each_in_window(
        &self,
        head_seq: u64,
        len: usize,
        f: &mut impl FnMut(u64) -> bool,
    ) {
        debug_assert!(len <= Self::CAPACITY);
        let h = (head_seq % Self::CAPACITY as u64) as usize;
        // The window maps to a contiguous slot ring [h, h+len); split it
        // at the wrap point so each piece ascends in seq order.
        let first = (Self::CAPACITY - h).min(len);
        if !self.walk(h, h + first, head_seq - h as u64, f) {
            return;
        }
        if len > first {
            self.walk(0, len - first, head_seq + first as u64, f);
        }
    }

    /// Visits set slots in `[lo, hi)`; slot `s` reports seq `base + s`.
    #[inline]
    fn walk(&self, lo: usize, hi: usize, base: u64, f: &mut impl FnMut(u64) -> bool) -> bool {
        let mut w = lo >> 6;
        while (w << 6) < hi {
            let mut word = self.bits[w];
            if (w << 6) < lo {
                word &= !0u64 << (lo - (w << 6));
            }
            let word_end = (w + 1) << 6;
            if word_end > hi {
                word &= !0u64 >> (word_end - hi);
            }
            while word != 0 {
                let slot = (w << 6) + word.trailing_zeros() as usize;
                if !f(base + slot as u64) {
                    return false;
                }
                word &= word - 1;
            }
            w += 1;
        }
        true
    }
}

impl<'s, S: CommittedSource + ?Sized> Core<'s, S> {
    /// Removes a verified-correct prediction from every taint set,
    /// visiting only the entries the reverse index names as dependents.
    pub(crate) fn clear_taint(&mut self, seq: u64) {
        let slot = (seq % RobSet::CAPACITY as u64) as usize;
        let members = self.taint_members[slot];
        if self.tainted == 0 || members.is_empty() {
            return;
        }
        self.taint_members[slot] = RobSet::EMPTY;
        let Some(head) = self.rob.front() else { return };
        let (head_seq, len) = (head.rec.seq, self.rob.len());
        members.for_each_in_window(head_seq, len, &mut |m| {
            let e = &mut self.rob[(m - head_seq) as usize];
            // Stale member bits (squashed or re-issued entries) fail
            // this re-validation and are skipped.
            if e.rec.seq == m && e.taint.remove(seq) && e.taint.is_empty() {
                self.tainted -= 1;
            }
            true
        });
    }

    /// Reissue-style recovery: every issued instruction whose result
    /// depends on the mispredicted value re-executes one cycle later.
    pub(crate) fn invalidate_dependents(&mut self, bad: u64) {
        if self.tainted == 0 {
            return;
        }
        let slot = (bad % RobSet::CAPACITY as u64) as usize;
        let members = self.taint_members[slot];
        if members.is_empty() {
            return;
        }
        self.taint_members[slot] = RobSet::EMPTY;
        let Some(head) = self.rob.front() else { return };
        let (head_seq, len) = (head.rec.seq, self.rob.len());
        let next = self.now + 1;
        let mut reissued = 0u64;
        let mut unheld = 0usize;
        members.for_each_in_window(head_seq, len, &mut |m| {
            let e = &mut self.rob[(m - head_seq) as usize];
            if e.rec.seq == m && e.taint.remove(bad) {
                if e.taint.is_empty() {
                    self.tainted -= 1;
                }
                if e.issued {
                    debug_assert!(e.in_iq, "a tainted issued entry holds its queue slot");
                    e.issued = false;
                    e.complete_at = NO_CYCLE;
                    e.done = false;
                    e.earliest_issue = next;
                    e.in_iq = true;
                    e.reissued = true;
                    self.to_issue[e.queue as usize].insert(e.rec.seq);
                    // Re-entering the pending set: drop any stale
                    // blocked bit so the walk re-examines it.
                    self.issue_blocked[0].remove(e.rec.seq);
                    self.issue_blocked[1].remove(e.rec.seq);
                    self.held_slots.remove(e.rec.seq);
                    unheld += 1;
                    reissued += 1;
                }
            }
            true
        });
        self.held_issued -= unheld;
        self.stats.reissued_insts += reissued;
        self.issue_idle = false;
    }

    /// Refetch-style recovery: squash everything from the first use of
    /// the mispredicted value onward and refetch it through the
    /// source's rewind path.
    pub(crate) fn squash_from(&mut self, first: u64) {
        self.stats.squashes += 1;
        self.redirect = Redirect::ValueRefetch;

        let mut records = std::mem::take(&mut self.squash_scratch);
        records.clear();

        // Drop not-yet-dispatched fetched instructions.
        while let Some(f) = self.frontend.back() {
            if f.rec.seq >= first {
                records.push(self.frontend.pop_back().expect("non-empty").rec);
            } else {
                break;
            }
        }

        // Drop the ROB tail, rolling back the dispatch-time shadow state
        // in reverse order.
        while let Some(e) = self.rob.back() {
            if e.rec.seq < first {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_insts += 1;
            self.to_issue[e.queue as usize].remove(e.rec.seq);
            if !e.taint.is_empty() {
                self.tainted -= 1;
            }
            if e.in_iq {
                self.iq_occupancy[e.queue as usize] -= 1;
                if e.issued {
                    self.held_issued -= 1;
                    self.held_slots.remove(e.rec.seq);
                }
            }
            if let Some(dst) = e.rec.dst {
                self.writers[dst.class() as usize] -= 1;
                self.shadow[dst.index()] = e.rec.old_value;
                self.last_value[e.rec.pc] =
                    if e.had_last_value { Some(e.prev_last_value) } else { None };
            }
            records.push(e.rec);
        }
        while self.stores.back().is_some_and(|&s| s >= first) {
            self.stores.pop_back();
        }

        // Records were collected youngest-first; the source replays them
        // oldest-first.
        records.sort_unstable_by_key(|r| r.seq);
        self.replay_pending += records.len() as u64;
        self.source.rewind(&mut records);
        debug_assert!(records.is_empty(), "rewind must drain the squashed records");
        self.squash_scratch = records;

        // Rebuild the rename map from the surviving entries.
        self.last_writer = [None; NUM_REGS];
        for e in &self.rob {
            if let Some(dst) = e.rec.dst {
                self.last_writer[dst.index()] = Some(e.rec.seq);
            }
        }
        // First-use markers pointing at squashed consumers are stale.
        for e in &mut self.rob {
            // `NO_SEQ >= first` just rewrites the sentinel to itself.
            if e.first_use >= first {
                e.first_use = NO_SEQ;
            }
        }
        if self.stalled_on.is_some_and(|s| s >= first) {
            self.stalled_on = None;
        }
        self.halted_fetch = false;
        self.fetch_resume_at = self.fetch_resume_at.max(self.now + 1);
        self.issue_idle = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RobSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(300); // slot 44
        assert!(s.contains(3) && s.contains(300));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.is_empty());
        assert!(s.remove(300));
        assert!(s.is_empty());
    }

    #[test]
    fn union_accumulates() {
        let mut a = RobSet::EMPTY;
        let mut b = RobSet::EMPTY;
        a.insert(1);
        b.insert(255);
        b.insert(64);
        a.union_with(&b);
        for seq in [1, 64, 255] {
            assert!(a.contains(seq));
        }
    }

    #[test]
    fn window_iteration_is_seq_ordered_across_wrap() {
        // Window [250, 250+12) wraps the 256-slot ring.
        let mut s = RobSet::EMPTY;
        let members = [250u64, 253, 255, 256, 258, 261];
        for &m in &members {
            s.insert(m);
        }
        // A stale bit outside the window must not be reported.
        s.insert(262 + 256);
        let mut seen = Vec::new();
        s.for_each_in_window(250, 12, &mut |seq| {
            seen.push(seq);
            true
        });
        assert_eq!(seen, members);

        // Early stop.
        let mut seen = Vec::new();
        s.for_each_in_window(250, 12, &mut |seq| {
            seen.push(seq);
            seq < 256
        });
        assert_eq!(seen, [250, 253, 255, 256]);
    }

    #[test]
    fn window_iteration_handles_large_offsets() {
        let mut s = RobSet::EMPTY;
        let head = 1_000_003u64; // arbitrary non-aligned head
        for d in [0u64, 7, 63, 64, 128, 199] {
            s.insert(head + d);
        }
        let mut seen = Vec::new();
        s.for_each_in_window(head, 200, &mut |seq| {
            seen.push(seq - head);
            true
        });
        assert_eq!(seen, [0, 7, 63, 64, 128, 199]);
    }
}
