//! The committed-instruction stream the timing core consumes.
//!
//! The timing model is trace-driven over the architectural
//! (committed-path) instruction stream: every cell of the paper's
//! scheme × recovery × workload grid replays the *same* committed
//! stream for a given workload, because value misprediction never
//! changes architectural state — only timing. [`CommittedSource`]
//! abstracts where that stream comes from so the grid can pay for
//! functional emulation once per workload instead of once per cell:
//!
//! * [`EmuSource`] — live functional emulation (the fallback; exactly
//!   the pre-refactor behaviour);
//! * [`ReplaySource`] — streaming replay of a previously captured
//!   trace, degrading to live emulation mid-run if the stream turns
//!   out to be corrupt;
//! * [`SharedSource`] — a shared, fully decoded in-memory trace in
//!   columnar form ([`TraceColumns`]) captured once and handed to
//!   every cell.
//!
//! All three must produce bit-identical [`crate::SimStats`]; the
//! integration suite enforces this for every scheme × recovery pair.
//!
//! # The rewind contract
//!
//! Refetch-style misprediction recovery squashes the ROB tail and
//! *re-fetches* the squashed instructions. The core hands the squashed
//! records — sorted ascending by `seq`, a contiguous suffix of what the
//! source has produced so far — back via [`CommittedSource::rewind`];
//! the source must replay exactly those records (in order) before
//! producing new ones. `rewind` drains the vector it is given so the
//! core can reuse the allocation; [`SharedSource`] simply moves its
//! cursor back, making refetch recovery allocation-free.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rvp_emu::{Committed, Emulator};
use rvp_isa::Program;

use crate::columns::TraceColumns;
use crate::stats::SimError;

// `Committed` records are the unit of every source's storage and of the
// rewind path; keep them register-file-width cheap to move.
const _: () = assert!(std::mem::size_of::<Committed>() <= 64);

/// Which implementation a [`CommittedSource`] is (telemetry only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Live functional emulation.
    Live,
    /// Streaming replay of an on-disk trace.
    Replay,
    /// Shared in-memory decoded trace.
    Shared,
}

impl SourceKind {
    /// Stable lowercase name (used in logs and summary JSON).
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::Live => "live",
            SourceKind::Replay => "replay",
            SourceKind::Shared => "shared",
        }
    }
}

/// A stream of committed-path instruction records for the timing core.
///
/// The stream starts at `seq == 0` and is consecutive; after a
/// [`rewind`](CommittedSource::rewind) the already-produced suffix is
/// replayed before fresh records resume. [`peek`](CommittedSource::peek)
/// must not advance the stream: the fetch stage inspects the next
/// record's PC for the I-cache model before deciding to consume it.
pub trait CommittedSource {
    /// Which implementation this is.
    fn kind(&self) -> SourceKind;

    /// The next record, without consuming it. `Ok(None)` means the
    /// program ended (a `halt` or the end of a captured trace).
    fn peek(&mut self) -> Result<Option<&Committed>, SimError>;

    /// The next record's PC, without consuming it — all the fetch stage
    /// needs for its I-cache probe. Sources with a columnar backing
    /// store answer this from the hot PC column alone; the default
    /// reads it off the peeked record.
    fn peek_pc(&mut self) -> Result<Option<usize>, SimError> {
        Ok(self.peek()?.map(|r| r.pc))
    }

    /// Consumes and returns the next record.
    fn next_record(&mut self) -> Result<Option<Committed>, SimError>;

    /// Hands back squashed records (ascending by `seq`, a contiguous
    /// suffix of everything produced so far) for replay. Drains
    /// `squashed`.
    fn rewind(&mut self, squashed: &mut Vec<Committed>);

    /// Whether the source has degraded from its nominal mode (e.g. a
    /// corrupt trace forced a fall-back to live emulation).
    fn degraded(&self) -> bool {
        false
    }
}

/// Initial capacity of a streaming source's pending queue. The queue
/// holds rewound records plus at most one peeked fresh record, so a
/// squash's depth (bounded by the ROB plus the fetched-but-undispatched
/// suffix) is the realistic high-water mark.
const PENDING_CAPACITY: usize = 256;

/// Live functional emulation — the fallback source and the exact
/// pre-refactor behaviour of the timing core.
#[derive(Debug)]
pub struct EmuSource<'p> {
    emu: Emulator<'p>,
    /// Rewound records awaiting replay, oldest first; may also hold one
    /// peeked-but-unconsumed fresh record at the back.
    pending: VecDeque<Committed>,
    done: bool,
}

impl<'p> EmuSource<'p> {
    /// A live source over `program`, starting at the first instruction.
    pub fn new(program: &'p Program) -> EmuSource<'p> {
        EmuSource {
            emu: Emulator::new(program),
            pending: VecDeque::with_capacity(PENDING_CAPACITY),
            done: false,
        }
    }

    fn fill(&mut self) -> Result<(), SimError> {
        if self.pending.is_empty() && !self.done {
            match self.emu.step()? {
                Some(rec) => self.pending.push_back(rec),
                None => self.done = true,
            }
        }
        Ok(())
    }
}

impl CommittedSource for EmuSource<'_> {
    fn kind(&self) -> SourceKind {
        SourceKind::Live
    }

    fn peek(&mut self) -> Result<Option<&Committed>, SimError> {
        self.fill()?;
        Ok(self.pending.front())
    }

    fn next_record(&mut self) -> Result<Option<Committed>, SimError> {
        self.fill()?;
        Ok(self.pending.pop_front())
    }

    fn rewind(&mut self, squashed: &mut Vec<Committed>) {
        // Any peeked fresh record in `pending` is younger than every
        // squashed record, so pushing the squashed suffix to the front
        // (youngest first) keeps the stream in `seq` order.
        for rec in squashed.drain(..).rev() {
            self.pending.push_front(rec);
        }
    }
}

/// Shared in-memory decoded trace in columnar ([`TraceColumns`]) form,
/// captured once per (workload, input, budget) and fanned out to every
/// grid cell.
///
/// Because the trace is captured from `seq == 0`, the column index *is*
/// the seq, and rewinding is a cursor move — refetch recovery does no
/// work at all on this source. The fetch stage's
/// [`peek_pc`](CommittedSource::peek_pc) probe touches only the hot PC
/// column; a full record is assembled once, on consumption.
#[derive(Debug, Clone)]
pub struct SharedSource {
    trace: Arc<TraceColumns>,
    cursor: usize,
    /// Scratch for the record-returning peek path (tests, the live-mode
    /// trait contract); the hot path goes through `peek_pc`.
    peeked: Option<Committed>,
}

impl SharedSource {
    /// A source replaying `trace` from the beginning.
    pub fn new(trace: Arc<TraceColumns>) -> SharedSource {
        SharedSource { trace, cursor: 0, peeked: None }
    }

    /// Functionally emulates `program` for at most `max_insts`
    /// committed instructions and returns the decoded columnar trace.
    pub fn capture(program: &Program, max_insts: u64) -> Result<Arc<TraceColumns>, SimError> {
        let mut emu = Emulator::new(program);
        let mut trace = Vec::new();
        while (trace.len() as u64) < max_insts {
            match emu.step()? {
                Some(rec) => trace.push(rec),
                None => break,
            }
        }
        Ok(Arc::new(TraceColumns::from_records(&trace)))
    }

    /// The underlying trace (for sharing with further cells).
    pub fn trace(&self) -> &Arc<TraceColumns> {
        &self.trace
    }
}

impl CommittedSource for SharedSource {
    fn kind(&self) -> SourceKind {
        SourceKind::Shared
    }

    fn peek(&mut self) -> Result<Option<&Committed>, SimError> {
        self.peeked = self.trace.record(self.cursor);
        Ok(self.peeked.as_ref())
    }

    #[inline]
    fn peek_pc(&mut self) -> Result<Option<usize>, SimError> {
        Ok(self.trace.pc(self.cursor))
    }

    #[inline]
    fn next_record(&mut self) -> Result<Option<Committed>, SimError> {
        let rec = self.trace.record(self.cursor);
        if rec.is_some() {
            self.cursor += 1;
        }
        Ok(rec)
    }

    fn rewind(&mut self, squashed: &mut Vec<Committed>) {
        if let Some(first) = squashed.first() {
            debug_assert_eq!(self.trace.record(first.seq as usize).map(|r| r.seq), Some(first.seq));
            self.cursor = first.seq as usize;
        }
        squashed.clear();
    }
}

/// Streaming replay of a captured trace, with graceful degradation: if
/// the stream errors mid-run (truncated or corrupt file), the source
/// logs a structured warning, fast-forwards a fresh emulator to the
/// current position and continues live. The checksummed prefix it
/// already delivered is identical to what emulation produces, so stats
/// stay bit-identical.
///
/// Generic over the record iterator so `rvp-uarch` needs no dependency
/// on the trace container format; `rvp-trace`'s reader slots in as `I`.
pub struct ReplaySource<'p, I, E>
where
    I: Iterator<Item = Result<Committed, E>>,
    E: fmt::Display,
{
    program: &'p Program,
    /// The trace stream; `None` once degraded to live emulation.
    reader: Option<I>,
    /// The fallback emulator, created on degradation.
    emu: Option<Emulator<'p>>,
    /// Rewound records awaiting replay (plus at most one peeked record).
    pending: VecDeque<Committed>,
    /// Fresh records produced so far (== the seq of the next fresh one).
    produced: u64,
    done: bool,
    degraded: bool,
}

impl<'p, I, E> ReplaySource<'p, I, E>
where
    I: Iterator<Item = Result<Committed, E>>,
    E: fmt::Display,
{
    /// A source replaying `reader`; `program` backs the live fallback.
    ///
    /// The caller is responsible for having validated that the trace
    /// was captured from this exact program (e.g. via trace metadata);
    /// the fallback silently re-derives the stream from `program`.
    pub fn new(program: &'p Program, reader: I) -> ReplaySource<'p, I, E> {
        ReplaySource {
            program,
            reader: Some(reader),
            emu: None,
            pending: VecDeque::with_capacity(PENDING_CAPACITY),
            produced: 0,
            done: false,
            degraded: false,
        }
    }

    /// Drops the broken reader and fast-forwards a live emulator past
    /// the `produced` records already delivered.
    fn degrade(&mut self, error: &dyn fmt::Display) -> Result<(), SimError> {
        rvp_obs::log::warn(
            "uarch::source",
            "trace replay failed; falling back to live emulation",
            &[
                ("error", error.to_string().into()),
                ("produced", rvp_json::Json::from(self.produced)),
            ],
        );
        self.reader = None;
        self.degraded = true;
        let mut emu = Emulator::new(self.program);
        for _ in 0..self.produced {
            if emu.step()?.is_none() {
                // The program ends before the trace prefix does: the
                // trace cannot belong to this program after all.
                self.done = true;
                break;
            }
        }
        self.emu = Some(emu);
        Ok(())
    }

    fn fill(&mut self) -> Result<(), SimError> {
        if !self.pending.is_empty() || self.done {
            return Ok(());
        }
        if let Some(reader) = &mut self.reader {
            match reader.next() {
                Some(Ok(rec)) => {
                    self.pending.push_back(rec);
                    self.produced += 1;
                    return Ok(());
                }
                None => {
                    self.done = true;
                    return Ok(());
                }
                Some(Err(e)) => {
                    let msg = e.to_string();
                    self.degrade(&msg)?;
                }
            }
        }
        if self.done {
            return Ok(());
        }
        match self.emu.as_mut().expect("degraded source has an emulator").step()? {
            Some(rec) => {
                self.pending.push_back(rec);
                self.produced += 1;
            }
            None => self.done = true,
        }
        Ok(())
    }
}

impl<I, E> CommittedSource for ReplaySource<'_, I, E>
where
    I: Iterator<Item = Result<Committed, E>>,
    E: fmt::Display,
{
    fn kind(&self) -> SourceKind {
        SourceKind::Replay
    }

    fn peek(&mut self) -> Result<Option<&Committed>, SimError> {
        self.fill()?;
        Ok(self.pending.front())
    }

    fn next_record(&mut self) -> Result<Option<Committed>, SimError> {
        self.fill()?;
        Ok(self.pending.pop_front())
    }

    fn rewind(&mut self, squashed: &mut Vec<Committed>) {
        for rec in squashed.drain(..).rev() {
            self.pending.push_front(rec);
        }
    }

    fn degraded(&self) -> bool {
        self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvp_isa::{ProgramBuilder, Reg};

    fn tiny_program() -> Program {
        let r = Reg::int(1);
        let mut b = ProgramBuilder::new();
        b.li(r, 10);
        b.label("top");
        b.subi(r, r, 1);
        b.bnez(r, "top");
        b.halt();
        b.build().unwrap()
    }

    fn drain(src: &mut dyn CommittedSource) -> Vec<Committed> {
        let mut out = Vec::new();
        while let Some(rec) = src.next_record().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn emu_and_shared_sources_agree() {
        let p = tiny_program();
        let trace = SharedSource::capture(&p, 1 << 20).unwrap();
        let mut live = EmuSource::new(&p);
        let mut shared = SharedSource::new(Arc::clone(&trace));
        assert_eq!(drain(&mut live), drain(&mut shared));
    }

    #[test]
    fn peek_does_not_consume() {
        let p = tiny_program();
        let mut src = EmuSource::new(&p);
        let peeked = *src.peek().unwrap().unwrap();
        assert_eq!(src.next_record().unwrap().unwrap(), peeked);
        assert_ne!(src.peek().unwrap().unwrap().seq, peeked.seq);
    }

    #[test]
    fn rewind_replays_the_squashed_suffix() {
        let p = tiny_program();
        let trace = SharedSource::capture(&p, 1 << 20).unwrap();
        for (name, src) in [
            ("live", Box::new(EmuSource::new(&p)) as Box<dyn CommittedSource>),
            ("shared", Box::new(SharedSource::new(Arc::clone(&trace)))),
        ] {
            let mut src = src;
            let mut taken = Vec::new();
            for _ in 0..6 {
                taken.push(src.next_record().unwrap().unwrap());
            }
            // Squash the last three and expect them again.
            let mut squashed = taken[3..].to_vec();
            src.rewind(&mut squashed);
            assert!(squashed.is_empty(), "{name}: rewind must drain");
            for expect in &taken[3..] {
                assert_eq!(&src.next_record().unwrap().unwrap(), expect, "{name}");
            }
            assert_eq!(src.next_record().unwrap().unwrap().seq, 6, "{name}");
        }
    }

    #[test]
    fn replay_source_streams_and_degrades() {
        let p = tiny_program();
        let trace = SharedSource::capture(&p, 1 << 20).unwrap();
        let full: Vec<Committed> = trace.records().collect();

        // Clean replay: identical stream, not degraded.
        let ok = full.iter().copied().map(Ok::<_, String>).collect::<Vec<_>>();
        let mut src = ReplaySource::new(&p, ok.into_iter());
        assert_eq!(drain(&mut src), full);
        assert!(!src.degraded());

        // A stream that errors halfway: the fallback emulator must
        // reproduce the remainder exactly.
        let broken: Vec<Result<Committed, String>> = full
            .iter()
            .take(5)
            .copied()
            .map(Ok)
            .chain([Err("simulated corruption".to_string())])
            .collect();
        let mut src = ReplaySource::new(&p, broken.into_iter());
        assert_eq!(drain(&mut src), full);
        assert!(src.degraded());
    }
}
