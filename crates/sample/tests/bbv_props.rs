//! Property tests for the BBV profile serialization.
//!
//! Plans and profiles are cached on disk next to the traces they
//! describe, so the JSON form must reproduce the in-memory profile
//! *exactly* — any drift in a vector component would shift k-means
//! assignments and silently change which intervals a cached plan
//! simulates.

use proptest::prelude::*;
use rvp_json::Json;
use rvp_sample::{BbvConfig, BbvProfile, BbvProfiler};

/// Builds a profile by streaming a synthetic committed walk derived
/// from the raw byte pairs: each step visits a PC and either falls
/// through or transfers, which is all the profiler observes.
fn profile_from(steps: &[(u8, bool)], interval: u64, dims: usize, seed: u64) -> BbvProfile {
    let cfg = BbvConfig { interval_insts: interval, dims, seed };
    let mut p = BbvProfiler::new(256, cfg);
    let mut pc = 0usize;
    for &(target, transfer) in steps {
        let next = if transfer { target as usize } else { pc + 1 };
        // Stay inside the 256-instruction "program".
        let next = next % 255;
        p.observe(pc, next);
        pc = next;
    }
    p.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bbv_profile_json_round_trips_exactly(
        steps in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..2000),
        interval in 1u64..300,
        dims in 1usize..24,
        seed in any::<u64>(),
    ) {
        let profile = profile_from(&steps, interval, dims, seed);
        let text = profile.to_json().to_string();
        let parsed = Json::parse(&text).expect("profile JSON must parse");
        let back = BbvProfile::from_json(&parsed).expect("profile JSON must round trip");
        // Exact equality, floats included: the serializer must use a
        // round-trip float representation, not a fixed precision.
        prop_assert_eq!(&profile, &back);
        // And the re-serialized form is byte-stable (content addresses
        // of cached profiles depend on this).
        prop_assert_eq!(text, back.to_json().to_string());
    }

    #[test]
    fn bbv_profile_invariants_hold_for_any_stream(
        steps in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..2000),
        interval in 1u64..300,
    ) {
        let profile = profile_from(&steps, interval, 8, 0xbb5);
        prop_assert_eq!(profile.total_insts, steps.len() as u64);
        prop_assert_eq!(profile.lens.iter().sum::<u64>(), steps.len() as u64);
        for v in &profile.vectors {
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-9, "non-unit interval vector: {}", norm);
        }
    }
}
