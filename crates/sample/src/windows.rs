//! Second streaming pass: extract each representative interval (plus
//! its functional-warmup prefix) from the committed stream into
//! shareable in-memory trace columns.
//!
//! Only the planned windows are materialized — a 100M-instruction run
//! with a handful of 250K-instruction representatives keeps a few MB in
//! memory instead of the ~3.4GB a full [`TraceColumns`] would need.
//! Detail records are re-based to seq 0 so each window is a
//! self-contained committed stream any [`rvp_uarch::SharedSource`] can
//! serve (the columns' `from_records` requires consecutive seqs from
//! zero, and the timing core asserts stream contiguity).

use std::sync::Arc;

use rvp_emu::Committed;
use rvp_uarch::TraceColumns;

use crate::plan::SamplePlan;

/// One representative interval, materialized.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    /// Index of the interval in the profiled stream.
    pub index: usize,
    /// First committed seq of the detail interval in the full stream.
    pub start: u64,
    /// Whole-run instruction share this window's stats stand for.
    pub weight: f64,
    /// Cluster the representative was drawn from.
    pub cluster: usize,
    /// Functional-warmup records (original seqs), immediately preceding
    /// `start`; shorter than the plan's window at the stream head.
    pub warmup: Arc<Vec<Committed>>,
    /// The detail interval, re-based to seq 0.
    pub detail: Arc<TraceColumns>,
}

/// Extracts every planned window from `records` (the committed stream
/// in order, e.g. an emulator or trace-reader iterator). Stops pulling
/// as soon as the last planned window is complete.
///
/// # Errors
///
/// Propagates the first stream error.
///
/// # Panics
///
/// Panics if the stream ends before a planned window does — the plan
/// was built from the same stream, so that means the caller replayed a
/// different (shorter) run than the one profiled.
pub fn extract_windows<E>(
    plan: &SamplePlan,
    records: impl Iterator<Item = Result<Committed, E>>,
) -> Result<Vec<SampleWindow>, E> {
    let _span = rvp_obs::span!("sample.extract", {
        windows: plan.intervals.len() as u64,
        replayed: plan.replayed_insts()
    });
    // (warmup range, detail range) per representative, in stream order.
    struct Pending {
        warmup_start: u64,
        detail_start: u64,
        detail_end: u64,
        warmup: Vec<Committed>,
        detail: Vec<Committed>,
    }
    let mut pending: Vec<Pending> = plan
        .intervals
        .iter()
        .map(|r| Pending {
            warmup_start: r.start.saturating_sub(plan.warmup_insts),
            detail_start: r.start,
            detail_end: r.start + r.len,
            warmup: Vec::new(),
            detail: Vec::with_capacity(r.len as usize),
        })
        .collect();
    let last_end = pending.last().map_or(0, |p| p.detail_end);

    // A record can belong to several windows (an adjacent
    // representative's detail range overlaps the next one's warmup
    // range when warmup spans a whole interval), so each record is
    // offered to every still-open window.
    for (i, rec) in records.enumerate() {
        let seq = i as u64;
        if seq >= last_end {
            break;
        }
        let rec = rec?;
        debug_assert_eq!(rec.seq, seq, "committed stream must be consecutive");
        for p in &mut pending {
            if seq >= p.warmup_start && seq < p.detail_start {
                p.warmup.push(rec);
            } else if seq >= p.detail_start && seq < p.detail_end {
                let mut rebased = rec;
                rebased.seq -= p.detail_start;
                p.detail.push(rebased);
            }
        }
    }

    Ok(plan
        .intervals
        .iter()
        .zip(pending)
        .map(|(r, p)| {
            assert_eq!(
                p.detail.len() as u64,
                r.len,
                "stream ended inside planned interval {} (stream/plan mismatch)",
                r.index
            );
            SampleWindow {
                index: r.index,
                start: r.start,
                weight: r.weight,
                cluster: r.cluster,
                warmup: Arc::new(p.warmup),
                detail: Arc::new(TraceColumns::from_records(&p.detail)),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RepInterval;

    fn rec(seq: u64) -> Committed {
        Committed {
            seq,
            pc: (seq % 7) as usize,
            next_pc: ((seq + 1) % 7) as usize,
            dst: None,
            old_value: seq,
            new_value: seq + 1,
            eff_addr: None,
            taken: None,
        }
    }

    fn plan_with(intervals: Vec<RepInterval>, warmup: u64) -> SamplePlan {
        SamplePlan {
            interval_insts: 10,
            warmup_insts: warmup,
            dims: 4,
            k: intervals.len(),
            seed: 0,
            total_insts: 100,
            intervals,
        }
    }

    #[test]
    fn windows_are_rebased_and_warmup_clipped_at_stream_head() {
        let plan = plan_with(
            vec![
                RepInterval {
                    index: 0,
                    start: 0,
                    len: 10,
                    weight: 0.5,
                    cluster: 0,
                    cluster_size: 1,
                },
                RepInterval {
                    index: 3,
                    start: 30,
                    len: 10,
                    weight: 0.5,
                    cluster: 1,
                    cluster_size: 1,
                },
            ],
            5,
        );
        let stream = (0..100).map(|s| Ok::<_, ()>(rec(s)));
        let windows = extract_windows(&plan, stream).unwrap();
        assert_eq!(windows.len(), 2);
        // First window starts at the stream head: no warmup available.
        assert!(windows[0].warmup.is_empty());
        assert_eq!(windows[0].detail.len(), 10);
        assert_eq!(windows[0].detail.record(0).unwrap().old_value, 0);
        // Second window: warmup seqs 25..30 (original), detail rebased.
        let w = &windows[1];
        assert_eq!(w.warmup.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![25, 26, 27, 28, 29]);
        let d0 = w.detail.record(0).unwrap();
        assert_eq!(d0.seq, 0, "detail must be rebased");
        assert_eq!(d0.old_value, 30, "rebased record keeps its payload");
    }

    #[test]
    fn extraction_stops_at_the_last_window() {
        let plan = plan_with(
            vec![RepInterval {
                index: 1,
                start: 10,
                len: 10,
                weight: 1.0,
                cluster: 0,
                cluster_size: 1,
            }],
            4,
        );
        let mut pulled = 0u64;
        let stream = (0..100).map(|s| {
            pulled += 1;
            Ok::<_, ()>(rec(s))
        });
        let windows = extract_windows(&plan, stream).unwrap();
        assert_eq!(windows[0].detail.len(), 10);
        assert!(pulled <= 21, "pulled {pulled} records for a window ending at 20");
    }

    #[test]
    #[should_panic(expected = "stream ended inside planned interval")]
    fn short_stream_is_a_loud_mismatch() {
        let plan = plan_with(
            vec![RepInterval {
                index: 5,
                start: 50,
                len: 10,
                weight: 1.0,
                cluster: 0,
                cluster_size: 1,
            }],
            0,
        );
        let stream = (0..55).map(|s| Ok::<_, ()>(rec(s)));
        let _ = extract_windows(&plan, stream);
    }
}
