//! Streaming basic-block-vector (BBV) interval profiling.
//!
//! A basic block is a run of committed instructions between control
//! transfers; the stream is sliced into fixed-size intervals and each
//! interval is summarized by how many instructions it spent in each
//! block (execution frequency × block length, the SimPoint weighting).
//! Storing one dimension per static block would make clustering cost
//! grow with program size, so each block's contribution is pushed
//! through a fixed random ±1 projection into [`BbvConfig::dims`]
//! dimensions as it streams by — the classic dimensionality reduction
//! from the SimPoint line of work, which preserves relative distances
//! well enough for phase discovery.
//!
//! The profiler is a pure streaming consumer: feed it `(pc, next_pc)`
//! pairs in commit order via [`BbvProfiler::observe`] and call
//! [`BbvProfiler::finish`]. It never buffers the stream, so profiling a
//! 100M-instruction run costs one dense counter increment per
//! instruction plus a per-interval projection flush.

use rvp_json::Json;

/// Parameters of a BBV profiling pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbvConfig {
    /// Committed instructions per interval.
    pub interval_insts: u64,
    /// Projected dimensionality (SimPoint uses 15; 16 keeps the
    /// accumulators a power of two).
    pub dims: usize,
    /// Seed of the random projection. Part of the plan's content
    /// address: two passes with the same seed project identically.
    pub seed: u64,
}

impl Default for BbvConfig {
    fn default() -> BbvConfig {
        BbvConfig { interval_insts: 100_000, dims: 16, seed: 0x5a6d_9f21 }
    }
}

/// The profile of one run: one projected, L2-normalized vector per
/// interval.
#[derive(Debug, Clone, PartialEq)]
pub struct BbvProfile {
    /// Interval size the profile was collected at.
    pub interval_insts: u64,
    /// Projected dimensionality.
    pub dims: usize,
    /// Projection seed.
    pub seed: u64,
    /// One unit vector per interval, in stream order.
    pub vectors: Vec<Vec<f64>>,
    /// Committed instructions in each interval (only the final interval
    /// may be short).
    pub lens: Vec<u64>,
    /// Total committed instructions observed.
    pub total_insts: u64,
}

impl BbvProfile {
    /// JSON form; [`BbvProfile::from_json`] round-trips it.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("interval_insts", self.interval_insts.into()),
            ("dims", (self.dims as u64).into()),
            ("seed", self.seed.into()),
            ("total_insts", self.total_insts.into()),
            ("lens", Json::arr(self.lens.iter().map(|&l| Json::from(l)))),
            (
                "vectors",
                Json::arr(self.vectors.iter().map(|v| Json::arr(v.iter().map(|&x| Json::from(x))))),
            ),
        ])
    }

    /// Parses [`BbvProfile::to_json`] back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<BbvProfile, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("missing {k:?}"));
        let num = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("{k:?} must be an integer"));
        let vectors = field("vectors")?
            .as_arr()
            .ok_or("\"vectors\" must be an array")?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or("vector rows must be arrays")?
                    .iter()
                    .map(|x| x.as_f64().ok_or("vector entries must be numbers".to_owned()))
                    .collect()
            })
            .collect::<Result<Vec<Vec<f64>>, String>>()?;
        let lens = field("lens")?
            .as_arr()
            .ok_or("\"lens\" must be an array")?
            .iter()
            .map(|x| x.as_u64().ok_or("lens entries must be integers".to_owned()))
            .collect::<Result<Vec<u64>, String>>()?;
        if lens.len() != vectors.len() {
            return Err(format!("{} vectors but {} lens", vectors.len(), lens.len()));
        }
        Ok(BbvProfile {
            interval_insts: num("interval_insts")?,
            dims: num("dims")? as usize,
            seed: num("seed")?,
            vectors,
            lens,
            total_insts: num("total_insts")?,
        })
    }
}

/// Streaming BBV profiler; see the module docs for the data flow.
#[derive(Debug)]
pub struct BbvProfiler {
    cfg: BbvConfig,
    /// Per-static-instruction projection cache: `dims` signs for the
    /// block led by each PC, filled lazily on first execution.
    projections: Vec<Option<Box<[f64]>>>,
    /// Instructions attributed to each block leader in the current
    /// interval (dense, indexed by leader PC).
    counts: Vec<u64>,
    /// Leaders touched this interval (sparse companion to `counts`).
    touched: Vec<usize>,
    /// Leader of the block the stream is currently inside.
    leader: usize,
    /// The previous record was a control transfer (its `next_pc` was not
    /// its fall-through successor), so the current record starts a block.
    prev_transferred: bool,
    /// PCs known to lead a block (targets seen at least once), so a
    /// fall-through *into* a branch target still starts a new block and
    /// leadership is stable across approach orders.
    is_leader: Vec<bool>,
    in_interval: u64,
    total: u64,
    vectors: Vec<Vec<f64>>,
    lens: Vec<u64>,
}

impl BbvProfiler {
    /// A profiler for a program of `program_len` static instructions.
    pub fn new(program_len: usize, cfg: BbvConfig) -> BbvProfiler {
        assert!(cfg.interval_insts > 0, "interval size must be positive");
        assert!(cfg.dims > 0, "projected dimensionality must be positive");
        BbvProfiler {
            projections: vec![None; program_len],
            counts: vec![0; program_len],
            touched: Vec::new(),
            leader: 0,
            prev_transferred: true,
            is_leader: vec![false; program_len],
            in_interval: 0,
            total: 0,
            vectors: Vec::new(),
            lens: Vec::new(),
            cfg,
        }
    }

    /// Feeds one committed instruction: its PC and the PC of the next
    /// committed instruction (the pair every `Committed` record carries).
    pub fn observe(&mut self, pc: usize, next_pc: usize) {
        // A block starts after a control transfer (the previous record
        // did not fall through), or at a PC some transfer has targeted
        // before — without the latter, a straight-line run *into* a loop
        // head would merge with the loop body depending on approach
        // order.
        if self.prev_transferred || self.is_leader[pc] {
            self.leader = pc;
            self.is_leader[pc] = true;
        }
        self.prev_transferred = next_pc != pc + 1;
        if self.counts[self.leader] == 0 {
            self.touched.push(self.leader);
        }
        self.counts[self.leader] += 1;
        self.in_interval += 1;
        self.total += 1;
        if self.in_interval == self.cfg.interval_insts {
            self.flush_interval();
        }
    }

    /// Projects and normalizes the finished interval.
    fn flush_interval(&mut self) {
        let mut v = vec![0.0f64; self.cfg.dims];
        let (seed, dims) = (self.cfg.seed, self.cfg.dims);
        for &leader in &self.touched {
            let proj = self.projections[leader].get_or_insert_with(|| {
                (0..dims).map(|d| projection_sign(seed, leader, d)).collect()
            });
            let n = self.counts[leader] as f64;
            for (acc, &p) in v.iter_mut().zip(proj.iter()) {
                *acc += n * p;
            }
            self.counts[leader] = 0;
        }
        self.touched.clear();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        self.vectors.push(v);
        self.lens.push(self.in_interval);
        self.in_interval = 0;
    }

    /// Finishes the pass. A trailing partial interval shorter than half
    /// the interval size is folded into statistics (total, lens) but
    /// kept as a clusterable vector only when it is at least half full —
    /// a tiny tail is not a phase, and letting it form its own cluster
    /// would waste a representative on noise.
    pub fn finish(mut self) -> BbvProfile {
        if self.in_interval >= self.cfg.interval_insts.div_ceil(2) {
            self.flush_interval();
        } else if self.in_interval > 0 {
            // Attribute the tail's instructions to the last full
            // interval's weight so the lens still sum to the total.
            if let Some(last) = self.lens.last_mut() {
                *last += self.in_interval;
            } else {
                // The whole run was shorter than half an interval:
                // profile it as a single (only) interval.
                self.flush_interval();
            }
        }
        BbvProfile {
            interval_insts: self.cfg.interval_insts,
            dims: self.cfg.dims,
            seed: self.cfg.seed,
            vectors: self.vectors,
            lens: self.lens,
            total_insts: self.total,
        }
    }
}

/// The fixed ±1 projection entry for `(leader, dim)` under `seed`
/// (splitmix64 finalizer over the packed key).
fn projection_sign(seed: u64, leader: usize, dim: usize) -> f64 {
    let mut z = seed ^ (leader as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((dim as u64) << 56);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(stream: &[(usize, usize)], interval: u64) -> BbvProfile {
        let cfg = BbvConfig { interval_insts: interval, ..BbvConfig::default() };
        let len = stream.iter().map(|&(pc, _)| pc + 1).max().unwrap_or(1);
        let mut p = BbvProfiler::new(len, cfg);
        for &(pc, next) in stream {
            p.observe(pc, next);
        }
        p.finish()
    }

    /// A simple two-phase stream: a loop over block A, then over block B.
    fn two_phase(n: usize) -> Vec<(usize, usize)> {
        let mut s = Vec::new();
        for _ in 0..n {
            s.extend([(0, 1), (1, 2), (2, 0)]);
        }
        for _ in 0..n {
            s.extend([(10, 11), (11, 12), (12, 10)]);
        }
        s
    }

    #[test]
    fn intervals_are_unit_vectors_and_lens_sum_to_total() {
        let p = profile_of(&two_phase(1000), 300);
        assert_eq!(p.total_insts, 6000);
        assert_eq!(p.lens.iter().sum::<u64>(), 6000);
        for v in &p.vectors {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
    }

    #[test]
    fn phases_project_to_distinct_vectors() {
        let p = profile_of(&two_phase(1000), 300);
        // Intervals inside the same phase are identical; across phases
        // they differ.
        let first = &p.vectors[0];
        let last = &p.vectors[p.vectors.len() - 1];
        let d2: f64 = first.iter().zip(last).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(d2 > 0.5, "phases too close: {d2}");
        let second = &p.vectors[1];
        let d2same: f64 = first.iter().zip(second).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(d2same < 1e-9, "same phase drifted: {d2same}");
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = profile_of(&two_phase(500), 250);
        let b = profile_of(&two_phase(500), 250);
        assert_eq!(a, b);
    }

    #[test]
    fn short_tail_folds_into_the_previous_interval() {
        // 10 full intervals of 100 plus a 3-instruction tail.
        let mut s = Vec::new();
        for _ in 0..1003 {
            s.push((0, 0));
        }
        let p = profile_of(&s, 100);
        assert_eq!(p.vectors.len(), 10);
        assert_eq!(p.lens.iter().sum::<u64>(), 1003);
        assert_eq!(*p.lens.last().unwrap(), 103);
    }

    #[test]
    fn json_round_trip() {
        let p = profile_of(&two_phase(200), 150);
        let back = BbvProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
    }
}
