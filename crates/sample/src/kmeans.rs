//! Seeded, fully deterministic k-means with a BIC-guided choice of k.
//!
//! Clustering runs once per (workload, sampling-config) pair and its
//! output is content-addressed and journaled, so determinism is a hard
//! requirement: the same points and seed must yield bit-identical
//! centroids and assignments on every machine. All randomness comes
//! from a local splitmix64 generator — no global RNG, no HashMap
//! iteration order — and every tie (equidistant centroids, equal BIC)
//! breaks toward the lowest index.
//!
//! The k selection follows the SimPoint recipe: score k = 1..=max_k
//! with the Bayesian Information Criterion under a spherical-Gaussian
//! model (X-means' formulation) and pick the *smallest* k whose score
//! reaches 90% of the observed BIC range — more clusters always fit
//! better, so "best BIC" alone would pin k at max_k.

/// Result of one clustering: `assignments[i]` is the cluster of point
/// `i`, `centroids[c]` its center, `inertia` the summed squared
/// distance of points to their centroids.
#[derive(Debug, Clone, PartialEq)]
pub struct Kmeans {
    /// Number of clusters.
    pub k: usize,
    /// Cluster centers, `k` rows.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared point-to-centroid distances.
    pub inertia: f64,
}

/// splitmix64: the statelessly-seedable generator used for k-means++
/// sampling. Deterministic and dependency-free.
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd iterations stop after this many rounds even without
/// convergence (they essentially always converge much earlier).
const MAX_ITERS: usize = 64;

/// Clusters `points` into `k` groups with k-means++ seeding and Lloyd
/// refinement. Deterministic in (`points`, `k`, `seed`).
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, or the points have
/// mismatched dimensionality.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Kmeans {
    assert!(!points.is_empty(), "cannot cluster zero points");
    assert!(k > 0, "k must be positive");
    let k = k.min(points.len());
    let dims = points[0].len();
    assert!(points.iter().all(|p| p.len() == dims), "mismatched dimensionality");
    let mut rng = SplitMix(seed ^ 0x6b6d_6561_6e73); // "kmeans"

    // k-means++ seeding: first center uniform, then proportional to
    // squared distance from the nearest chosen center.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[(rng.next_u64() % points.len() as u64) as usize].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass is on chosen centers (duplicate
            // points): fall back to a uniform pick.
            (rng.next_u64() % points.len() as u64) as usize
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, &centroids[centroids.len() - 1]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    // Lloyd refinement.
    let mut assignments = vec![0usize; points.len()];
    for _ in 0..MAX_ITERS {
        let mut moved = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, center) in centroids.iter().enumerate() {
                let d = dist2(p, center);
                // Strict `<` breaks distance ties toward the lowest
                // cluster index.
                if d < best.1 {
                    best = (c, d);
                }
            }
            if assignments[i] != best.0 {
                assignments[i] = best.0;
                moved = true;
            }
        }
        let mut sums = vec![vec![0.0f64; dims]; centroids.len()];
        let mut counts = vec![0u64; centroids.len()];
        for (p, &c) in points.iter().zip(&assignments) {
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] > 0 {
                centroids[c] = sum.into_iter().map(|s| s / counts[c] as f64).collect();
            }
            // An emptied cluster keeps its old center; the BIC layer
            // prefers smaller k anyway, so we do not re-seed it.
        }
        if !moved {
            break;
        }
    }

    let inertia = points.iter().zip(&assignments).map(|(p, &c)| dist2(p, &centroids[c])).sum();
    Kmeans { k: centroids.len(), centroids, assignments, inertia }
}

/// The X-means BIC of a clustering under a spherical-Gaussian model
/// (larger is better).
fn bic(points: &[Vec<f64>], km: &Kmeans) -> f64 {
    let r = points.len() as f64;
    let d = points[0].len() as f64;
    let k = km.k as f64;
    // Maximum-likelihood variance, floored so duplicate-point degenerate
    // clusterings stay finite.
    let sigma2 = (km.inertia / (r - k).max(1.0)).max(1e-12);
    let mut counts = vec![0u64; km.k];
    for &c in &km.assignments {
        counts[c] += 1;
    }
    let loglik: f64 = counts
        .iter()
        .filter(|&&n| n > 0)
        .map(|&n| {
            let rn = n as f64;
            rn * (rn / r).ln() - rn * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln()
        })
        .sum::<f64>()
        - (r - k) * d / 2.0;
    let params = k * (d + 1.0);
    loglik - params / 2.0 * r.ln()
}

/// Clusters `points` for each k in `1..=max_k` and returns the
/// clustering at the *smallest* k whose BIC reaches 90% of the observed
/// BIC range — the SimPoint selection rule. Deterministic in
/// (`points`, `max_k`, `seed`).
///
/// # Panics
///
/// As [`kmeans`].
pub fn choose_k(points: &[Vec<f64>], max_k: usize, seed: u64) -> Kmeans {
    let max_k = max_k.clamp(1, points.len());
    let runs: Vec<Kmeans> = (1..=max_k).map(|k| kmeans(points, k, seed)).collect();
    let scores: Vec<f64> = runs.iter().map(|km| bic(points, km)).collect();
    let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let threshold = if hi > lo { lo + 0.9 * (hi - lo) } else { lo };
    let pick = scores.iter().position(|&s| s >= threshold).unwrap_or(scores.len() - 1);
    runs.into_iter().nth(pick).expect("pick is in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight, well-separated blobs on a line (deterministic).
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for center in [0.0, 10.0, 20.0] {
            for i in 0..20 {
                let jitter = (i as f64 - 9.5) / 100.0;
                pts.push(vec![center + jitter, center - jitter]);
            }
        }
        pts
    }

    #[test]
    fn fixed_seed_fixed_clustering() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 42);
        let b = kmeans(&pts, 3, 42);
        assert_eq!(a, b, "same seed must reproduce bit-identical output");
        // Pin the exact assignment layout: blob membership must match
        // exactly (labels may permute across seeds but not across runs).
        assert_eq!(a.assignments[..20], [a.assignments[0]; 20]);
        assert_eq!(a.assignments[20..40], [a.assignments[20]; 20]);
        assert_eq!(a.assignments[40..60], [a.assignments[40]; 20]);
        assert!(a.inertia < 0.5, "tight blobs, inertia {}", a.inertia);
    }

    #[test]
    fn centroids_land_on_blob_centers() {
        let pts = blobs();
        let km = kmeans(&pts, 3, 7);
        let mut firsts: Vec<f64> = km.centroids.iter().map(|c| c[0]).collect();
        firsts.sort_by(f64::total_cmp);
        for (got, want) in firsts.iter().zip([0.0, 10.0, 20.0]) {
            assert!((got - want).abs() < 0.1, "centroid {got} vs {want}");
        }
    }

    #[test]
    fn bic_recovers_the_true_cluster_count() {
        let km = choose_k(&blobs(), 8, 1);
        assert_eq!(km.k, 3, "BIC should find the three blobs");
    }

    #[test]
    fn choose_k_handles_degenerate_inputs() {
        // One point, duplicate points, k larger than the point count.
        let one = choose_k(&[vec![1.0, 2.0]], 5, 3);
        assert_eq!(one.k, 1);
        let dup = choose_k(&vec![vec![4.0]; 10], 4, 3);
        assert_eq!(dup.k, 1, "identical points are one phase");
        let km = kmeans(&[vec![0.0], vec![1.0]], 5, 9);
        assert!(km.k <= 2);
    }

    #[test]
    fn different_seeds_may_permute_but_cover_identically() {
        let pts = blobs();
        for seed in [1u64, 2, 3, 999] {
            let km = kmeans(&pts, 3, seed);
            // Every blob stays within one cluster.
            for blob in 0..3 {
                let base = km.assignments[blob * 20];
                assert!(km.assignments[blob * 20..(blob + 1) * 20].iter().all(|&c| c == base));
            }
        }
    }
}
