//! The sampling plan: which intervals to simulate in detail, with what
//! warmup, and how to weight them.
//!
//! A [`SamplePlan`] is a pure function of (committed stream,
//! [`SampleSpec`]): the BBV profile is clustered, the interval closest
//! to each cluster centroid becomes that phase's representative, and
//! the phase's instruction share becomes the representative's weight.
//! Plans serialize to JSON and carry an FNV content fingerprint, so
//! callers can cache them next to the trace they describe and fold them
//! into grid/manifest config fingerprints.

use rvp_json::{Json, ToJson};

use crate::bbv::BbvProfile;
use crate::kmeans::choose_k;

/// User-facing sampling parameters (a [`crate::plan::SamplePlan`] is
/// derived from these plus the stream). Zero means "auto" for the two
/// instruction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Committed instructions per profiled interval; 0 picks
    /// budget/256, clamped to `[20_000, 250_000]` (small intervals keep
    /// the sampled fraction — and so the speedup — high; the functional
    /// warmup absorbs the extra boundary effects).
    pub interval_insts: u64,
    /// Functional-warmup window before each representative interval;
    /// 0 picks one full interval (half is measurably biased low:
    /// representative intervals start with colder caches and branch
    /// history than the same code had in the full run).
    pub warmup_insts: u64,
    /// Projected BBV dimensionality.
    pub dims: usize,
    /// Upper bound on the cluster count the BIC selection may pick.
    pub max_k: usize,
    /// Seed for the random projection and the k-means sampling.
    pub seed: u64,
}

impl Default for SampleSpec {
    fn default() -> SampleSpec {
        SampleSpec { interval_insts: 0, warmup_insts: 0, dims: 16, max_k: 8, seed: 0xba5e }
    }
}

impl SampleSpec {
    /// The concrete (interval, warmup) sizes for a run of `budget`
    /// committed instructions, resolving the auto (zero) knobs.
    pub fn resolve(&self, budget: u64) -> (u64, u64) {
        let interval = if self.interval_insts > 0 {
            self.interval_insts
        } else {
            (budget / 256).clamp(20_000, 250_000)
        };
        let warmup = if self.warmup_insts > 0 { self.warmup_insts } else { interval };
        (interval, warmup)
    }

    /// The canonical textual form folded into config fingerprints
    /// (`grid_config_fnv`, the serve result cache): every knob, in a
    /// fixed order.
    pub fn fingerprint_component(&self) -> String {
        format!(
            "sample:interval={},warmup={},dims={},max_k={},seed={}",
            self.interval_insts, self.warmup_insts, self.dims, self.max_k, self.seed
        )
    }

    /// The canonical spec string: [`SampleSpec::parse`] on the result
    /// reproduces `self` exactly (journal round trips rely on this).
    pub fn to_spec_string(&self) -> String {
        format!(
            "interval={},warmup={},dims={},max_k={},seed={}",
            self.interval_insts, self.warmup_insts, self.dims, self.max_k, self.seed
        )
    }

    /// Parses a CLI/env spec: `auto` (or the empty string) for all
    /// defaults, else a comma list of `interval=N`, `warmup=N`,
    /// `dims=N`, `max_k=N`, `seed=N` overrides — the same key names
    /// [`SampleSpec::fingerprint_component`] prints.
    ///
    /// # Errors
    ///
    /// Returns a description naming the offending item and the accepted
    /// keys.
    pub fn parse(text: &str) -> Result<SampleSpec, String> {
        let mut spec = SampleSpec::default();
        let text = text.trim();
        if text.is_empty() || text == "auto" {
            return Ok(spec);
        }
        for item in text.split(',') {
            let item = item.trim();
            let (key, value) = item.split_once('=').ok_or_else(|| {
                format!(
                    "bad sample spec item {item:?} (expected key=value with keys \
                     interval, warmup, dims, max_k, seed, or the word \"auto\")"
                )
            })?;
            let num =
                value.trim().parse::<u64>().map_err(|_| format!("bad sample value in {item:?}"))?;
            match key.trim() {
                "interval" => spec.interval_insts = num,
                "warmup" => spec.warmup_insts = num,
                "dims" => spec.dims = num as usize,
                "max_k" => spec.max_k = num as usize,
                "seed" => spec.seed = num,
                other => {
                    return Err(format!(
                        "unknown sample knob {other:?} (known: interval, warmup, dims, max_k, seed)"
                    ));
                }
            }
        }
        if spec.dims == 0 || spec.max_k == 0 {
            return Err("sample dims and max_k must be at least 1".to_owned());
        }
        Ok(spec)
    }
}

/// One representative interval of the sampled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepInterval {
    /// Index of the interval in the profiled stream.
    pub index: usize,
    /// First committed-instruction seq of the interval.
    pub start: u64,
    /// Committed instructions in the interval.
    pub len: u64,
    /// Fraction of the whole run's instructions this representative
    /// stands for (its cluster's instruction share; weights sum to 1).
    pub weight: f64,
    /// Cluster the representative was drawn from.
    pub cluster: usize,
    /// Number of profiled intervals in that cluster.
    pub cluster_size: usize,
}

/// A complete sampling plan for one workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    /// Interval size the plan was profiled at.
    pub interval_insts: u64,
    /// Functional-warmup window before each representative.
    pub warmup_insts: u64,
    /// Projected BBV dimensionality.
    pub dims: usize,
    /// Clusters the BIC selection settled on.
    pub k: usize,
    /// Seed the projection and clustering used.
    pub seed: u64,
    /// Committed instructions in the full profiled run.
    pub total_insts: u64,
    /// Representatives, ordered by stream position.
    pub intervals: Vec<RepInterval>,
}

impl SamplePlan {
    /// Builds a plan from a profile: cluster, pick the interval nearest
    /// each centroid (ties toward the earliest interval), weight by the
    /// cluster's instruction share.
    pub fn build(profile: &BbvProfile, spec: &SampleSpec, warmup_insts: u64) -> SamplePlan {
        let _span = rvp_obs::span!("sample.cluster", {
            intervals: profile.vectors.len() as u64,
            max_k: spec.max_k as u64
        });
        assert!(!profile.vectors.is_empty(), "cannot plan over an empty profile");
        let km = choose_k(&profile.vectors, spec.max_k, spec.seed);

        // Interval start offsets: lens may have a folded tail, but every
        // clusterable interval starts at index * interval_insts.
        let cluster_insts: Vec<u64> = {
            let mut insts = vec![0u64; km.k];
            for (i, &c) in km.assignments.iter().enumerate() {
                insts[c] += profile.lens[i];
            }
            insts
        };
        let total: u64 = profile.lens.iter().sum();

        let mut intervals = Vec::new();
        for (c, &c_insts) in cluster_insts.iter().enumerate() {
            if c_insts == 0 {
                continue;
            }
            let rep = km
                .assignments
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == c)
                .min_by(|&(i, _), &(j, _)| {
                    let di = dist2(&profile.vectors[i], &km.centroids[c]);
                    let dj = dist2(&profile.vectors[j], &km.centroids[c]);
                    di.total_cmp(&dj).then(i.cmp(&j))
                })
                .map(|(i, _)| i)
                .expect("non-empty cluster");
            intervals.push(RepInterval {
                index: rep,
                start: rep as u64 * profile.interval_insts,
                // Simulate the nominal interval size even for the
                // tail-folded last interval; the weight carries the
                // folded instructions.
                len: profile.lens[rep].min(profile.interval_insts),
                weight: c_insts as f64 / total as f64,
                cluster: c,
                cluster_size: km.assignments.iter().filter(|&&a| a == c).count(),
            });
        }
        intervals.sort_by_key(|r| r.start);
        SamplePlan {
            interval_insts: profile.interval_insts,
            warmup_insts,
            dims: profile.dims,
            k: km.k,
            seed: spec.seed,
            total_insts: profile.total_insts,
            intervals,
        }
    }

    /// Committed instructions simulated in detail under this plan
    /// (excluding warmup).
    pub fn sampled_insts(&self) -> u64 {
        self.intervals.iter().map(|r| r.len).sum()
    }

    /// Detail plus functional-warmup instructions — the total stream
    /// consumption of a sampled run after planning.
    pub fn replayed_insts(&self) -> u64 {
        self.intervals.iter().map(|r| r.len + self.warmup_insts.min(r.start)).sum()
    }

    /// Content fingerprint over the canonical JSON form.
    pub fn fingerprint(&self) -> u64 {
        crate::fnv1a(self.to_json().to_string().as_bytes())
    }

    /// Parses [`SamplePlan::to_json`] back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<SamplePlan, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("missing {k:?}"));
        let num = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("{k:?} must be an integer"));
        let intervals = field("intervals")?
            .as_arr()
            .ok_or("\"intervals\" must be an array")?
            .iter()
            .map(|r| {
                let rf = |k: &str| r.get(k).ok_or_else(|| format!("missing interval {k:?}"));
                let rn =
                    |k: &str| rf(k)?.as_u64().ok_or_else(|| format!("interval {k:?} not integer"));
                Ok(RepInterval {
                    index: rn("index")? as usize,
                    start: rn("start")?,
                    len: rn("len")?,
                    weight: rf("weight")?.as_f64().ok_or("interval \"weight\" not a number")?,
                    cluster: rn("cluster")? as usize,
                    cluster_size: rn("cluster_size")? as usize,
                })
            })
            .collect::<Result<Vec<RepInterval>, String>>()?;
        Ok(SamplePlan {
            interval_insts: num("interval_insts")?,
            warmup_insts: num("warmup_insts")?,
            dims: num("dims")? as usize,
            k: num("k")? as usize,
            seed: num("seed")?,
            total_insts: num("total_insts")?,
            intervals,
        })
    }
}

impl ToJson for SamplePlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("interval_insts", self.interval_insts.into()),
            ("warmup_insts", self.warmup_insts.into()),
            ("dims", (self.dims as u64).into()),
            ("k", (self.k as u64).into()),
            ("seed", self.seed.into()),
            ("total_insts", self.total_insts.into()),
            (
                "intervals",
                Json::arr(self.intervals.iter().map(|r| {
                    Json::obj([
                        ("index", (r.index as u64).into()),
                        ("start", r.start.into()),
                        ("len", r.len.into()),
                        ("weight", r.weight.into()),
                        ("cluster", (r.cluster as u64).into()),
                        ("cluster_size", (r.cluster_size as u64).into()),
                    ])
                })),
            ),
        ])
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbv::{BbvConfig, BbvProfiler};

    fn two_phase_profile() -> BbvProfile {
        let cfg = BbvConfig { interval_insts: 300, ..BbvConfig::default() };
        let mut p = BbvProfiler::new(16, cfg);
        for _ in 0..1000 {
            for (pc, next) in [(0, 1), (1, 2), (2, 0)] {
                p.observe(pc, next);
            }
        }
        for _ in 0..1000 {
            for (pc, next) in [(10, 11), (11, 12), (12, 10)] {
                p.observe(pc, next);
            }
        }
        p.finish()
    }

    #[test]
    fn plan_covers_both_phases_with_unit_weight() {
        let profile = two_phase_profile();
        let spec = SampleSpec::default();
        let plan = SamplePlan::build(&profile, &spec, 150);
        assert_eq!(plan.k, 2, "two phases expected");
        assert_eq!(plan.intervals.len(), 2);
        let wsum: f64 = plan.intervals.iter().map(|r| r.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights sum to {wsum}");
        // One representative from each phase.
        assert!(plan.intervals[0].start < 3000);
        assert!(plan.intervals[1].start >= 3000);
        assert!(plan.sampled_insts() <= 2 * 300);
    }

    #[test]
    fn plan_is_deterministic_and_fingerprint_stable() {
        let profile = two_phase_profile();
        let spec = SampleSpec::default();
        let a = SamplePlan::build(&profile, &spec, 150);
        let b = SamplePlan::build(&profile, &spec, 150);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = SamplePlan::build(&profile, &SampleSpec { seed: 1, ..spec }, 150);
        // A different seed permutes clusters at worst; the fingerprint
        // must still see the config difference via the seed field.
        assert_ne!(a.fingerprint(), other.fingerprint());
    }

    #[test]
    fn plan_json_round_trips() {
        let profile = two_phase_profile();
        let plan = SamplePlan::build(&profile, &SampleSpec::default(), 150);
        let text = plan.to_json().to_string();
        let back = SamplePlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.fingerprint(), back.fingerprint());
    }

    #[test]
    fn spec_parsing_round_trips_the_fingerprint_keys() {
        assert_eq!(SampleSpec::parse("auto").unwrap(), SampleSpec::default());
        assert_eq!(SampleSpec::parse("").unwrap(), SampleSpec::default());
        let spec =
            SampleSpec::parse("interval=30000, warmup=5000, dims=8, max_k=3, seed=7").unwrap();
        assert_eq!(
            spec,
            SampleSpec { interval_insts: 30_000, warmup_insts: 5_000, dims: 8, max_k: 3, seed: 7 }
        );
        assert_eq!(SampleSpec::parse(&spec.to_spec_string()).unwrap(), spec);
        assert!(SampleSpec::parse("interval").unwrap_err().contains("key=value"));
        assert!(SampleSpec::parse("bogus=1").unwrap_err().contains("known:"));
        assert!(SampleSpec::parse("interval=abc").unwrap_err().contains("bad sample value"));
        assert!(SampleSpec::parse("max_k=0").is_err());
    }

    #[test]
    fn spec_resolution_clamps_the_auto_interval() {
        let spec = SampleSpec::default();
        assert_eq!(spec.resolve(100_000_000), (250_000, 250_000));
        assert_eq!(spec.resolve(400_000).0, 20_000);
        let explicit = SampleSpec { interval_insts: 5_000, warmup_insts: 1_000, ..spec };
        assert_eq!(explicit.resolve(100_000_000), (5_000, 1_000));
    }
}
