//! SimPoint-style phase sampling for paper-scale simulation.
//!
//! The paper evaluates each scheme over 300M–3B committed instructions
//! per benchmark; simulating that in detail for every (workload ×
//! scheme × recovery) grid cell is days of wall clock. Program behaviour
//! is phased, though: long runs revisit a small set of steady states,
//! so simulating one *representative* interval per phase and weighting
//! the results by phase population reconstructs whole-run IPC within a
//! few percent at a small fraction of the cost (Sherwood et al.'s
//! SimPoint methodology).
//!
//! The pipeline, one module per stage:
//!
//! 1. [`bbv`] — a cheap streaming pass over the committed stream slices
//!    it into fixed-size intervals and summarizes each as a basic-block
//!    execution-frequency vector, randomly projected down to ~16
//!    dimensions so clustering cost is independent of program size.
//! 2. [`kmeans`] — seeded, fully deterministic k-means++ over the
//!    projected vectors with a BIC-guided choice of k; one
//!    representative interval per cluster, weighted by how many
//!    instructions its cluster covers.
//! 3. [`windows`] — a second streaming pass extracts just the
//!    representative intervals (plus a functional-warmup prefix each)
//!    into shareable in-memory trace columns.
//! 4. [`combine`] — per-interval detailed [`rvp_uarch::SimStats`] are
//!    folded into a weighted whole-run estimate whose CPI stack still
//!    sums exactly to its cycle count.
//!
//! The [`plan::SamplePlan`] produced by stages 1–2 is a pure function
//! of (committed stream, sampling parameters); it serializes to JSON and
//! carries a content fingerprint so callers can cache it next to the
//! trace it describes. Everything here is deterministic: same stream +
//! same [`plan::SampleSpec`] → bit-identical plan, windows and
//! reconstruction.

pub mod bbv;
pub mod combine;
pub mod kmeans;
pub mod plan;
pub mod windows;

pub use bbv::{BbvConfig, BbvProfile, BbvProfiler};
pub use combine::combine_weighted;
pub use kmeans::{choose_k, kmeans, Kmeans};
pub use plan::{RepInterval, SamplePlan, SampleSpec};
pub use windows::{extract_windows, SampleWindow};

/// 64-bit FNV-1a (the same digest the trace container uses), local so
/// this crate stays free of I/O dependencies.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
