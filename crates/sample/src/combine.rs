//! Weighted reconstruction of whole-run statistics from per-interval
//! detailed runs.
//!
//! Each sampled interval's [`SimStats`] stands for its cluster's share
//! of the full run. Every counter is scaled by
//! `weight * total_insts / interval_committed` — the number of
//! instructions the interval represents over the number it actually
//! ran — and summed. Cycles are reconstructed *bucket-wise* through the
//! CPI stack and then re-summed, so the combined stack still sums
//! exactly to the combined cycle count (the invariant every detailed
//! run guarantees and the reports rely on).

use rvp_uarch::SimStats;

/// Folds per-interval stats into a whole-run estimate for a run of
/// `total_insts` committed instructions. `parts` pairs each interval's
/// whole-run weight with its detailed stats; weights should sum to ~1.
///
/// # Panics
///
/// Panics if `parts` is empty or any part committed zero instructions —
/// both mean the sampling plan upstream was broken, not a stats
/// question this function can answer.
pub fn combine_weighted(total_insts: u64, parts: &[(f64, SimStats)]) -> SimStats {
    assert!(!parts.is_empty(), "cannot combine zero sampled intervals");
    let factors: Vec<f64> = parts
        .iter()
        .map(|(w, s)| {
            assert!(s.committed > 0, "sampled interval committed nothing");
            w * total_insts as f64 / s.committed as f64
        })
        .collect();
    let sum = |get: &dyn Fn(&SimStats) -> u64| -> u64 {
        parts.iter().zip(&factors).map(|((_, s), f)| get(s) as f64 * f).sum::<f64>().round() as u64
    };

    let mut out = SimStats {
        committed: total_insts,
        loads: sum(&|s| s.loads),
        predictions: sum(&|s| s.predictions),
        correct_predictions: sum(&|s| s.correct_predictions),
        costly_mispredictions: sum(&|s| s.costly_mispredictions),
        squashes: sum(&|s| s.squashes),
        squashed_insts: sum(&|s| s.squashed_insts),
        reissued_insts: sum(&|s| s.reissued_insts),
        fetch_stall_cycles: sum(&|s| s.fetch_stall_cycles),
        iq_int_occupancy_sum: sum(&|s| s.iq_int_occupancy_sum),
        iq_fp_occupancy_sum: sum(&|s| s.iq_fp_occupancy_sum),
        ..SimStats::default()
    };
    out.branch.cond_branches = sum(&|s| s.branch.cond_branches);
    out.branch.cond_mispredicts = sum(&|s| s.branch.cond_mispredicts);
    out.branch.target_mispredicts = sum(&|s| s.branch.target_mispredicts);
    out.branch.returns = sum(&|s| s.branch.returns);
    out.branch.return_mispredicts = sum(&|s| s.branch.return_mispredicts);
    out.mem.l1i.accesses = sum(&|s| s.mem.l1i.accesses);
    out.mem.l1i.misses = sum(&|s| s.mem.l1i.misses);
    out.mem.l1d.accesses = sum(&|s| s.mem.l1d.accesses);
    out.mem.l1d.misses = sum(&|s| s.mem.l1d.misses);
    out.mem.l2.accesses = sum(&|s| s.mem.l2.accesses);
    out.mem.l2.misses = sum(&|s| s.mem.l2.misses);
    out.mem.itlb_misses = sum(&|s| s.mem.itlb_misses);
    out.mem.dtlb_misses = sum(&|s| s.mem.dtlb_misses);
    out.cpi.base = sum(&|s| s.cpi.base);
    out.cpi.reissue = sum(&|s| s.cpi.reissue);
    out.cpi.dcache = sum(&|s| s.cpi.dcache);
    out.cpi.queue_full = sum(&|s| s.cpi.queue_full);
    out.cpi.value_refetch = sum(&|s| s.cpi.value_refetch);
    out.cpi.branch_mispredict = sum(&|s| s.cpi.branch_mispredict);
    out.cpi.icache = sum(&|s| s.cpi.icache);
    out.cpi.fetch_stall = sum(&|s| s.cpi.fetch_stall);
    // Cycles come from the buckets, not an independent rounding, so the
    // CPI-stack invariant (buckets sum to cycles) survives combination.
    out.cycles = out.cpi.base
        + out.cpi.reissue
        + out.cpi.dcache
        + out.cpi.queue_full
        + out.cpi.value_refetch
        + out.cpi.branch_mispredict
        + out.cpi.icache
        + out.cpi.fetch_stall;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(committed: u64, base: u64, dcache: u64, preds: u64) -> SimStats {
        let mut s = SimStats {
            committed,
            loads: committed / 4,
            predictions: preds,
            correct_predictions: preds / 2,
            fetch_stall_cycles: 3,
            ..SimStats::default()
        };
        s.cpi.base = base;
        s.cpi.dcache = dcache;
        s.cycles = base + dcache;
        s.branch.cond_branches = committed / 10;
        s.mem.l1d.accesses = committed / 4;
        s.mem.l1d.misses = committed / 40;
        s
    }

    #[test]
    fn single_full_weight_part_scales_linearly() {
        let part = stats(1_000, 400, 100, 200);
        let whole = combine_weighted(10_000, &[(1.0, part.clone())]);
        assert_eq!(whole.committed, 10_000);
        assert_eq!(whole.cycles, 5_000);
        assert_eq!(whole.predictions, 2_000);
        assert_eq!(whole.mem.l1d.misses, 250);
        assert!((whole.ipc() - part.ipc()).abs() < 1e-12, "IPC is scale-invariant");
    }

    #[test]
    fn cpi_stack_sums_to_cycles_after_weighting() {
        // Weights and committed counts chosen so per-bucket scale
        // factors are non-integral.
        let parts = vec![(0.6, stats(997, 401, 99, 10)), (0.4, stats(1_003, 777, 3, 500))];
        let whole = combine_weighted(123_457, &parts);
        let stack_sum = whole.cpi.base
            + whole.cpi.reissue
            + whole.cpi.dcache
            + whole.cpi.queue_full
            + whole.cpi.value_refetch
            + whole.cpi.branch_mispredict
            + whole.cpi.icache
            + whole.cpi.fetch_stall;
        assert_eq!(whole.cycles, stack_sum);
        assert_eq!(whole.committed, 123_457);
    }

    #[test]
    fn weights_blend_phase_behaviour() {
        // Phase A: IPC 2.0; phase B: IPC 0.5. A 50/50 blend lands at
        // CPI (0.5 + 2.0) / 2 = 1.25 → IPC 0.8.
        let a = stats(1_000, 500, 0, 0);
        let b = stats(1_000, 2_000, 0, 0);
        let whole = combine_weighted(2_000, &[(0.5, a), (0.5, b)]);
        assert_eq!(whole.cycles, 2_500);
        assert!((whole.ipc() - 0.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot combine zero sampled intervals")]
    fn empty_parts_are_rejected() {
        let _ = combine_weighted(1_000, &[]);
    }
}
