//! Span tracer integration tests: nesting, cross-thread parenting, and
//! Perfetto (Chrome trace-event) JSON round-trip validity through
//! `Json::parse`.
//!
//! The tracer is process-global, so every test serializes on one lock
//! and re-arms with its own mock clock.

use std::sync::Mutex;

use rvp_json::Json;
use rvp_obs::span::{chrome_trace_json, from_chrome_trace, FieldValue, TraceData};
// `use rvp_obs::span` pulls in both the module and the root-exported
// `span!` macro (distinct namespaces, one import).
use rvp_obs::{span, Clock};

fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn nesting_assigns_parents_and_times() {
    let _lock = test_lock();
    let clock = Clock::mock(1_000);
    span::arm_with_clock(1024, clock.clone());

    {
        let outer = span!("request", { job: 42u64 });
        let outer_id = outer.id();
        assert_ne!(outer_id, 0);
        clock.advance_us(100);
        {
            let inner = span!("parse");
            assert_ne!(inner.id(), outer_id);
            clock.advance_us(25);
        }
        {
            let mut exec = span!("exec", { label: "li/lvp" });
            exec.add_field("retries", 1u64);
            clock.advance_us(300);
        }
    }

    let data = span::drain();
    span::disarm();
    assert_eq!(data.spans.len(), 3);
    assert_eq!(data.dropped, 0);

    let request = find(&data, "request");
    let parse = find(&data, "parse");
    let exec = find(&data, "exec");
    assert_eq!(request.parent, 0, "top-level span is a root");
    assert_eq!(parse.parent, request.id);
    assert_eq!(exec.parent, request.id);
    assert_eq!(request.start_us, 1_000);
    assert_eq!(request.dur_us, 425);
    assert_eq!(parse.dur_us, 25);
    assert_eq!(exec.dur_us, 300);
    assert_eq!(request.field("job"), Some(&FieldValue::U64(42)));
    assert_eq!(exec.field("label"), Some(&FieldValue::Str("li/lvp".to_owned())));
    assert_eq!(exec.field("retries"), Some(&FieldValue::U64(1)));
    // All three ran on this thread.
    assert_eq!(parse.tid, request.tid);
    assert_eq!(exec.tid, request.tid);
}

#[test]
fn cross_thread_children_keep_their_parent() {
    let _lock = test_lock();
    let clock = Clock::mock(0);
    span::arm_with_clock(1024, clock.clone());

    let parent_id = {
        let parent = span!("submit");
        let parent_id = parent.id();
        clock.advance_us(10);
        let worker = std::thread::spawn({
            let clock = clock.clone();
            move || {
                let exec = span::child_of(parent_id, "cell.exec", || {
                    vec![("cell".into(), "li/lvp".into())]
                });
                clock.advance_us(50);
                // Children opened on the worker nest under the handoff.
                let nested = span!("sim.run");
                clock.advance_us(5);
                drop(nested);
                drop(exec);
            }
        });
        worker.join().unwrap();
        parent_id
    };

    let data = span::drain();
    span::disarm();
    let submit = find(&data, "submit");
    let exec = find(&data, "cell.exec");
    let nested = find(&data, "sim.run");
    assert_eq!(submit.id, parent_id);
    assert_eq!(exec.parent, parent_id, "explicit parent crosses the thread boundary");
    assert_eq!(nested.parent, exec.id, "worker-side nesting continues under the handoff");
    assert_ne!(exec.tid, submit.tid, "worker ran on its own tid");
}

#[test]
fn queue_wait_style_manual_records_land_in_the_ring() {
    let _lock = test_lock();
    span::arm_with_clock(16, Clock::mock(0));
    let id = span::record("queue.wait", 7, 100, 350, vec![("job".into(), 3u64.into())]);
    assert_ne!(id, 0);
    let data = span::drain();
    span::disarm();
    let wait = find(&data, "queue.wait");
    assert_eq!(wait.parent, 7);
    assert_eq!(wait.start_us, 100);
    assert_eq!(wait.dur_us, 250);
}

#[test]
fn perfetto_json_round_trips_through_parse() {
    let _lock = test_lock();
    let clock = Clock::mock(500);
    span::arm_with_clock(1024, clock.clone());
    {
        let _root = span!("grid.cell", { fnv: 0xdeadbeefu64, label: "li/lvp" });
        clock.advance_us(40);
        let _child = span!("sim.measure");
        clock.advance_us(10);
    }
    let data = span::drain();
    span::disarm();

    // Export → serialize via to_writer → parse back via Json::parse.
    let exported = chrome_trace_json(&data);
    let mut bytes = Vec::new();
    exported.to_writer(&mut bytes).expect("to_writer");
    let text = String::from_utf8(bytes).expect("utf-8");
    let reparsed = Json::parse(&text).expect("valid JSON");

    // Chrome trace-event shape: object form with an X event per span.
    let events = reparsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert_eq!(events.len(), 2);
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event.get("args").and_then(|a| a.get("span_id")).is_some());
    }

    // Parent links survive the round trip.
    let back = from_chrome_trace(&reparsed).expect("parse back");
    assert_eq!(back.dropped, 0);
    let root = find(&back, "grid.cell");
    let child = find(&back, "sim.measure");
    assert_eq!(root.parent, 0);
    assert_eq!(child.parent, root.id);
    assert_eq!(root.start_us, 500);
    assert_eq!(root.dur_us, 50);
    assert_eq!(root.field("fnv"), Some(&FieldValue::U64(0xdeadbeef)));
    assert_eq!(root.field("label"), Some(&FieldValue::Str("li/lvp".to_owned())));
}

fn find<'a>(data: &'a TraceData, name: &str) -> &'a rvp_obs::SpanRecord {
    data.spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no span named {name} in {:?}", data.spans))
}
