//! Disarmed-overhead gate for the span tracer, in the style of the
//! uarch `alloc_gate` test: a counting global allocator proves that a
//! disarmed `span!` makes *zero* allocations, and that the allocation
//! count is independent of how many disarmed spans run — i.e. the
//! disarmed path is one relaxed atomic load, not a hidden buffer.
//!
//! This lives in its own test binary so the global allocator and the
//! process-global armed flag cannot interfere with the other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rvp_obs::{span, Clock};

struct CountingAlloc;

// Per-thread count: the libtest harness thread can allocate at any
// moment (channel waits, timeout bookkeeping), so a process-global
// counter makes the gate flaky. Const-init TLS is itself
// allocation-free, and `try_with` keeps the allocator safe during
// thread teardown.
thread_local! {
    static THREAD_ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = THREAD_ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    THREAD_ALLOC_CALLS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations made by `iterations` disarmed span scopes (with fields,
/// nesting and an id probe — the full disarmed API surface).
fn disarmed_allocs(iterations: u64) -> u64 {
    let fnv = 0xfeed_faceu64;
    let before = thread_allocs();
    for i in 0..iterations {
        let outer = span!("gate.outer", { fnv, i });
        let _inner = span!("gate.inner", { label: "li/lvp" });
        assert_eq!(outer.id(), 0, "disarmed guard has no id");
        assert_eq!(span::current(), 0);
    }
    thread_allocs() - before
}

#[test]
fn disarmed_spans_allocate_nothing() {
    assert!(!span::armed(), "tracer must start disarmed");

    // Warm up once so lazy statics (thread-locals, locks) are paid for
    // outside the measured windows.
    disarmed_allocs(10);

    let small = disarmed_allocs(1_000);
    let large = disarmed_allocs(100_000);
    assert_eq!(small, 0, "disarmed span scopes must not allocate");
    assert_eq!(small, large, "allocation count must be independent of disarmed span volume");

    // Sanity: the same scopes *do* record (and may allocate) once armed,
    // proving the gate is measuring the real API.
    span::arm_with_clock(1024, Clock::mock(0));
    {
        let _outer = span!("gate.outer", { fnv: 1u64 });
        let _inner = span!("gate.inner");
    }
    let data = span::drain();
    span::disarm();
    assert_eq!(data.spans.len(), 2);
}
