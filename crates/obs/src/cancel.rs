//! Cooperative cancellation: a dependency-free token shared between the
//! party that wants work stopped (serve admission, the grid watchdog, a
//! signal handler) and the party doing the work (the cycle loop).
//!
//! A [`CancelToken`] is a cheaply clonable handle over a shared atomic
//! cancel flag plus an optional absolute deadline. Polling is designed
//! for hot loops: a disarmed token costs one relaxed load
//! ([`CancelToken::is_cancelled`]), and the cycle loop only consults the
//! deadline clock every `2^k` iterations (see `rvp-uarch`), so the
//! `core_cycles` benchmark gate is unaffected.
//!
//! Cancellation is *cooperative*: nothing is killed. The worker observes
//! the token at a safe point, unwinds through ordinary `Result`
//! plumbing (`SimError::Cancelled` → `AttemptError::Cancelled` → a
//! squashed cell), and every durable structure (journal, result cache,
//! manifest) stays consistent because the worker exits through its
//! normal error paths.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Why a token fired. Carried into logs, spans, and job state so
/// operators can distinguish an operator abort from a missed deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Someone called [`CancelToken::cancel`] (job abort, client
    /// disconnect, watchdog, drain window expiry).
    Cancelled,
    /// The absolute deadline passed.
    DeadlineExceeded,
}

impl CancelReason {
    /// Stable string form, used in JSON payloads and span fields.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::Cancelled => "cancelled",
            CancelReason::DeadlineExceeded => "deadline",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Set once, never cleared. The only field hot paths touch.
    cancelled: AtomicBool,
    /// Absolute wall-clock deadline in microseconds since the Unix
    /// epoch; `0` means no deadline. Checked on the amortized path only.
    deadline_us: AtomicU64,
    /// `CancelReason` discriminant once fired (1 = cancelled,
    /// 2 = deadline), `0` before.
    reason: AtomicU64,
    /// Free-form operator-facing detail ("job 42 aborted", "drain
    /// window expired"). Cold path only.
    detail: Mutex<Option<String>>,
}

/// Shared cancellation handle. `Clone` is an `Arc` bump; all clones
/// observe the same flag and deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

fn wall_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires `timeout` from now. Equivalent to
    /// `CancelToken::new()` followed by [`set_deadline`](Self::set_deadline).
    pub fn with_deadline(timeout: Duration) -> Self {
        let t = Self::new();
        t.set_deadline(timeout);
        t
    }

    /// Arm (or tighten) the deadline to `timeout` from now. If a deadline
    /// is already set, the earlier of the two wins — a request-level
    /// deadline can only shrink under a server-level one.
    pub fn set_deadline(&self, timeout: Duration) {
        let when = wall_us().saturating_add(timeout.as_micros() as u64).max(1);
        let mut cur = self.inner.deadline_us.load(Ordering::Relaxed);
        loop {
            if cur != 0 && cur <= when {
                return;
            }
            match self.inner.deadline_us.compare_exchange_weak(
                cur,
                when,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Absolute deadline in µs since the epoch, if armed.
    pub fn deadline_us(&self) -> Option<u64> {
        match self.inner.deadline_us.load(Ordering::Relaxed) {
            0 => None,
            us => Some(us),
        }
    }

    /// Fire the token with an operator-facing detail string. Idempotent:
    /// the first cancel wins; later calls are no-ops.
    pub fn cancel(&self, detail: &str) {
        self.fire(CancelReason::Cancelled, detail);
    }

    fn fire(&self, reason: CancelReason, detail: &str) {
        if self.inner.cancelled.swap(true, Ordering::Release) {
            return; // already fired; keep the first reason
        }
        let code = match reason {
            CancelReason::Cancelled => 1,
            CancelReason::DeadlineExceeded => 2,
        };
        self.inner.reason.store(code, Ordering::Release);
        if let Ok(mut slot) = self.inner.detail.lock() {
            *slot = Some(detail.to_string());
        }
    }

    /// Cheapest possible poll: one relaxed load, no clock read. Does NOT
    /// notice deadline expiry on its own — pair with [`poll`](Self::poll)
    /// on an amortized schedule.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Amortized poll: checks the flag and, if a deadline is armed, the
    /// wall clock. Call this every N iterations, not every iteration.
    /// Returns the reason if the token has fired.
    pub fn poll(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return self.reason();
        }
        let deadline = self.inner.deadline_us.load(Ordering::Relaxed);
        if deadline != 0 && wall_us() >= deadline {
            self.fire(CancelReason::DeadlineExceeded, "deadline exceeded");
            return Some(CancelReason::DeadlineExceeded);
        }
        None
    }

    /// The reason the token fired, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.inner.reason.load(Ordering::Acquire) {
            1 => Some(CancelReason::Cancelled),
            2 => Some(CancelReason::DeadlineExceeded),
            _ => {
                // `cancelled` may be set a beat before `reason` lands;
                // report the generic reason rather than "not fired".
                if self.is_cancelled() {
                    Some(CancelReason::Cancelled)
                } else {
                    None
                }
            }
        }
    }

    /// Operator-facing detail recorded at fire time.
    pub fn detail(&self) -> Option<String> {
        self.inner.detail.lock().ok().and_then(|slot| slot.clone())
    }

    /// True when both handles share the same underlying token.
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_quiet() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.poll(), None);
        assert_eq!(t.reason(), None);
        assert_eq!(t.deadline_us(), None);
    }

    #[test]
    fn cancel_is_sticky_and_first_reason_wins() {
        let t = CancelToken::new();
        t.cancel("operator abort");
        assert!(t.is_cancelled());
        assert_eq!(t.poll(), Some(CancelReason::Cancelled));
        assert_eq!(t.detail().as_deref(), Some("operator abort"));
        // A later deadline expiry must not overwrite the reason.
        t.set_deadline(Duration::from_micros(0));
        assert_eq!(t.poll(), Some(CancelReason::Cancelled));
        assert_eq!(t.detail().as_deref(), Some("operator abort"));
    }

    #[test]
    fn expired_deadline_fires_on_poll_not_on_fast_path() {
        let t = CancelToken::with_deadline(Duration::from_micros(0));
        // The fast path never reads the clock.
        assert!(!t.is_cancelled());
        assert_eq!(t.poll(), Some(CancelReason::DeadlineExceeded));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn deadlines_only_tighten() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let loose = t.deadline_us().unwrap();
        t.set_deadline(Duration::from_secs(7200));
        assert_eq!(t.deadline_us().unwrap(), loose, "longer deadline ignored");
        t.set_deadline(Duration::from_secs(60));
        assert!(t.deadline_us().unwrap() < loose, "shorter deadline adopted");
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.same_token(&b));
        b.cancel("via clone");
        assert!(a.is_cancelled());
        assert_eq!(a.detail().as_deref(), Some("via clone"));
        assert!(!a.same_token(&CancelToken::new()));
    }

    #[test]
    fn cross_thread_visibility() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            while !t2.is_cancelled() {
                std::thread::yield_now();
            }
            t2.reason()
        });
        std::thread::sleep(Duration::from_millis(5));
        t.cancel("cross-thread");
        assert_eq!(h.join().unwrap(), Some(CancelReason::Cancelled));
    }
}
