//! Server-side metrics for the `rvp-serve` daemon: request/queue/cache
//! counters and a lock-free latency histogram, exposed at `/metrics`
//! and rendered by `rvp-report`.
//!
//! Everything here is a relaxed atomic — handler threads bump counters
//! concurrently with zero coordination, and a snapshot read is allowed
//! to be slightly torn (it is monitoring data, not accounting).

use std::sync::atomic::{AtomicU64, Ordering};

use rvp_json::{Json, ToJson};

use crate::registry::Metric;

/// Power-of-two-bucketed latency histogram in microseconds.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` microseconds (bucket 0
/// covers `[0, 2)`), which spans 1 µs to ~9 minutes in 40 buckets —
/// coarse (quantiles are read off bucket upper edges, so at most 2x
/// off) but constant-size, allocation-free and mergeable, which is
/// what a per-request hot path wants.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; Self::BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Number of power-of-two buckets.
    pub const BUCKETS: usize = 40;

    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (63 - u64::leading_zeros(us.max(1)) as usize).min(Self::BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Largest sample recorded, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, read off the
    /// upper edge of the bucket holding the rank-`ceil(q*count)`
    /// sample — an upper bound, never an underestimate. Returns 0 for
    /// an empty histogram; the top bucket reports the true maximum.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_us());
            }
        }
        self.max_us()
    }
}

impl ToJson for LatencyHistogram {
    fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count().into()),
            ("mean_us", self.mean_us().into()),
            ("p50_us", self.quantile_us(0.50).into()),
            ("p90_us", self.quantile_us(0.90).into()),
            ("p99_us", self.quantile_us(0.99).into()),
            ("max_us", self.max_us().into()),
        ])
    }
}

/// The serve daemon's operational counters, shared (behind an `Arc`)
/// by every handler thread, the sim worker pool and the `/metrics`
/// endpoint.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// HTTP requests handled (any method, any outcome).
    pub requests: AtomicU64,
    /// Requests rejected with 4xx (bad method/path/body).
    pub client_errors: AtomicU64,
    /// Requests that failed with 5xx (injected or real server faults).
    pub server_errors: AtomicU64,
    /// Sweeps rejected with 429 because the admission queue was full.
    pub rejected: AtomicU64,
    /// Sweep jobs admitted (journaled and scheduled).
    pub jobs_submitted: AtomicU64,
    /// Sweep jobs fully completed.
    pub jobs_completed: AtomicU64,
    /// Jobs re-enqueued from the journal after a daemon restart.
    pub jobs_resumed: AtomicU64,
    /// Cells answered from the content-addressed result cache.
    pub cache_hits: AtomicU64,
    /// Cells that had to be simulated.
    pub cache_misses: AtomicU64,
    /// Cells simulated to completion.
    pub cells_computed: AtomicU64,
    /// Cells that failed (contained; reported per-request, never fatal).
    pub cells_failed: AtomicU64,
    /// Jobs cancelled by the client (`DELETE /jobs/<id>`).
    pub jobs_cancelled: AtomicU64,
    /// In-flight cells squashed cooperatively (deadline, cancel, drain).
    pub cells_cancelled: AtomicU64,
    /// Sweeps shed with 429 by the overload governor (queue-delay EWMA
    /// over target while the queue was backed up).
    pub shed: AtomicU64,
    /// Drains initiated (SIGTERM or `POST /shutdown`); idempotent
    /// repeats are not counted.
    pub drains: AtomicU64,
    /// Connections answered 408 after stalling mid-request (slowloris).
    pub request_timeouts: AtomicU64,
    /// Waiting clients that disconnected before their job finished.
    pub client_disconnects: AtomicU64,
    /// Result-cache entries evicted to stay under the disk budget.
    pub cache_evictions: AtomicU64,
    /// EWMA of queue wait (enqueue to worker pickup), microseconds —
    /// the signal the overload governor sheds on.
    pub queue_delay_ewma_us: AtomicU64,
    /// Cells currently queued or running.
    pub queue_depth: AtomicU64,
    /// High-water mark of [`ServeMetrics::queue_depth`].
    pub queue_peak: AtomicU64,
    /// End-to-end request latency (request read to response written).
    pub request_latency: LatencyHistogram,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Bumps the queue depth, maintaining the high-water mark.
    pub fn queue_enter(&self, cells: u64) {
        let depth = self.queue_depth.fetch_add(cells, Ordering::Relaxed) + cells;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Drops the queue depth as cells finish.
    pub fn queue_exit(&self, cells: u64) {
        self.queue_depth.fetch_sub(cells, Ordering::Relaxed);
    }

    /// Folds one measured queue wait into the shedding EWMA
    /// (`new = 0.7*old + 0.3*sample`; the first sample seeds it). A
    /// torn read/write race only smears monitoring data, so plain
    /// relaxed load/store is fine.
    pub fn observe_queue_delay(&self, us: u64) {
        let old = self.queue_delay_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old * 7 + us * 3) / 10 };
        self.queue_delay_ewma_us.store(new, Ordering::Relaxed);
    }

    /// The counters as registry samples, for the unified
    /// [`MetricsRegistry`](crate::MetricsRegistry) / Prometheus
    /// exposition. Names follow Prometheus conventions
    /// (`rvp_serve_*_total` counters, `rvp_serve_*` gauges).
    pub fn metrics(&self) -> Vec<Metric> {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let latency = &self.request_latency;
        vec![
            Metric::counter("rvp_serve_requests_total", get(&self.requests)),
            Metric::counter("rvp_serve_client_errors_total", get(&self.client_errors)),
            Metric::counter("rvp_serve_server_errors_total", get(&self.server_errors)),
            Metric::counter("rvp_serve_rejected_total", get(&self.rejected)),
            Metric::counter("rvp_serve_jobs_submitted_total", get(&self.jobs_submitted)),
            Metric::counter("rvp_serve_jobs_completed_total", get(&self.jobs_completed)),
            Metric::counter("rvp_serve_jobs_resumed_total", get(&self.jobs_resumed)),
            Metric::counter("rvp_serve_cache_hits_total", get(&self.cache_hits)),
            Metric::counter("rvp_serve_cache_misses_total", get(&self.cache_misses)),
            Metric::gauge("rvp_serve_cache_hit_rate", self.cache_hit_rate()),
            Metric::counter("rvp_serve_cells_computed_total", get(&self.cells_computed)),
            Metric::counter("rvp_serve_cells_failed_total", get(&self.cells_failed)),
            Metric::counter("rvp_serve_jobs_cancelled_total", get(&self.jobs_cancelled)),
            Metric::counter("rvp_serve_cells_cancelled_total", get(&self.cells_cancelled)),
            Metric::counter("rvp_serve_shed_total", get(&self.shed)),
            Metric::counter("rvp_serve_drains_total", get(&self.drains)),
            Metric::counter("rvp_serve_request_timeouts_total", get(&self.request_timeouts)),
            Metric::counter("rvp_serve_client_disconnects_total", get(&self.client_disconnects)),
            Metric::counter("rvp_serve_cache_evictions_total", get(&self.cache_evictions)),
            Metric::gauge("rvp_serve_queue_delay_ewma_us", get(&self.queue_delay_ewma_us) as f64),
            Metric::gauge("rvp_serve_queue_depth", get(&self.queue_depth) as f64),
            Metric::gauge("rvp_serve_queue_peak", get(&self.queue_peak) as f64),
            Metric::counter("rvp_serve_request_latency_count", latency.count()),
            Metric::gauge("rvp_serve_request_latency_us", latency.quantile_us(0.50) as f64)
                .with_label("quantile", "0.5"),
            Metric::gauge("rvp_serve_request_latency_us", latency.quantile_us(0.90) as f64)
                .with_label("quantile", "0.9"),
            Metric::gauge("rvp_serve_request_latency_us", latency.quantile_us(0.99) as f64)
                .with_label("quantile", "0.99"),
            Metric::gauge("rvp_serve_request_latency_max_us", latency.max_us() as f64),
        ]
    }

    /// Fraction of cell lookups served from the cache (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total = hits + self.cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl ToJson for ServeMetrics {
    fn to_json(&self) -> Json {
        let get = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        Json::obj([
            ("requests", get(&self.requests)),
            ("client_errors", get(&self.client_errors)),
            ("server_errors", get(&self.server_errors)),
            ("rejected", get(&self.rejected)),
            ("jobs_submitted", get(&self.jobs_submitted)),
            ("jobs_completed", get(&self.jobs_completed)),
            ("jobs_resumed", get(&self.jobs_resumed)),
            ("cache_hits", get(&self.cache_hits)),
            ("cache_misses", get(&self.cache_misses)),
            ("cache_hit_rate", self.cache_hit_rate().into()),
            ("cells_computed", get(&self.cells_computed)),
            ("cells_failed", get(&self.cells_failed)),
            ("jobs_cancelled", get(&self.jobs_cancelled)),
            ("cells_cancelled", get(&self.cells_cancelled)),
            ("shed", get(&self.shed)),
            ("drains", get(&self.drains)),
            ("request_timeouts", get(&self.request_timeouts)),
            ("client_disconnects", get(&self.client_disconnects)),
            ("cache_evictions", get(&self.cache_evictions)),
            ("queue_delay_ewma_us", get(&self.queue_delay_ewma_us)),
            ("queue_depth", get(&self.queue_depth)),
            ("queue_peak", get(&self.queue_peak)),
            ("request_latency", self.request_latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.99), 0, "empty histogram");
        // 90 fast samples at 100us, 10 slow at 100_000us.
        for _ in 0..90 {
            h.record_us(100);
        }
        for _ in 0..10 {
            h.record_us(100_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_us(), 100_000);
        // p50 lands in the [64,128) bucket; the upper-edge estimate may
        // overstate but never by more than 2x, and never understates.
        let p50 = h.quantile_us(0.50);
        assert!((100..=127).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((100_000..=131_071).contains(&p99), "p99 {p99}");
        assert!(h.mean_us() >= 100 && h.mean_us() <= 100_000);
    }

    #[test]
    fn metrics_queue_and_hit_rate() {
        let m = ServeMetrics::new();
        m.queue_enter(6);
        m.queue_enter(4);
        m.queue_exit(8);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(m.queue_peak.load(Ordering::Relaxed), 10);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
        let j = m.to_json();
        assert_eq!(j.get("queue_peak").and_then(Json::as_u64), Some(10));
        assert!(j.get("request_latency").and_then(|l| l.get("count")).is_some());
    }
}
