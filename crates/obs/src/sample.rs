//! Windowed time-series sampling.
//!
//! A [`Sampler`] snapshots a handful of monotonically increasing
//! counters every N cycles and stores per-window *deltas* in a bounded
//! ring, making warm-up vs. steady-state behaviour visible without
//! unbounded memory: a long run simply forgets its oldest windows
//! (counted in [`Sampler::dropped`]).

use std::collections::VecDeque;

use rvp_json::{Json, ToJson};

/// Monotonic counter snapshot the simulator hands the sampler each
/// cycle. All fields are running totals, not deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Instructions committed so far.
    pub committed: u64,
    /// Value predictions committed so far.
    pub predictions: u64,
    /// ... of which correct.
    pub correct_predictions: u64,
    /// Sum over cycles of occupied integer-queue slots.
    pub iq_int_occupancy_sum: u64,
    /// Sum over cycles of occupied FP-queue slots.
    pub iq_fp_occupancy_sum: u64,
}

/// One completed sampling window (all fields are deltas over the
/// window, except `end_cycle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Cycle at which the window closed (exclusive).
    pub end_cycle: u64,
    /// Window length in cycles (the final window may be shorter).
    pub cycles: u64,
    /// Instructions committed in the window.
    pub committed: u64,
    /// Value predictions committed in the window.
    pub predictions: u64,
    /// ... of which correct.
    pub correct_predictions: u64,
    /// Integer-queue occupancy summed over the window's cycles.
    pub iq_int_occupancy_sum: u64,
    /// FP-queue occupancy summed over the window's cycles.
    pub iq_fp_occupancy_sum: u64,
}

impl WindowSample {
    /// IPC within the window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Prediction accuracy within the window (1.0 when no predictions).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }

    /// Average occupied integer-queue slots per cycle in the window.
    pub fn avg_iq_int_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_int_occupancy_sum as f64 / self.cycles as f64
        }
    }
}

impl ToJson for WindowSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("end_cycle", self.end_cycle.into()),
            ("cycles", self.cycles.into()),
            ("committed", self.committed.into()),
            ("predictions", self.predictions.into()),
            ("correct_predictions", self.correct_predictions.into()),
            ("iq_int_occupancy_sum", self.iq_int_occupancy_sum.into()),
            ("iq_fp_occupancy_sum", self.iq_fp_occupancy_sum.into()),
            ("ipc", self.ipc().into()),
            ("accuracy", self.accuracy().into()),
        ])
    }
}

/// Bounded ring of [`WindowSample`]s fed once per cycle.
#[derive(Debug, Clone)]
pub struct Sampler {
    interval: u64,
    capacity: usize,
    windows: VecDeque<WindowSample>,
    dropped: u64,
    window_start: u64,
    base: CounterSnapshot,
}

impl Sampler {
    /// A sampler closing a window every `interval` cycles, retaining at
    /// most `capacity` windows. `interval` must be non-zero.
    pub fn new(interval: u64, capacity: usize) -> Sampler {
        assert!(interval > 0, "sample interval must be non-zero");
        Sampler {
            interval,
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            dropped: 0,
            window_start: 0,
            base: CounterSnapshot::default(),
        }
    }

    /// Cycles per window.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Windows evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Called at the end of cycle `now` with the current counter
    /// totals; closes a window when one has elapsed.
    pub fn tick(&mut self, now: u64, counters: CounterSnapshot) {
        if now + 1 - self.window_start >= self.interval {
            self.close(now + 1, counters);
        }
    }

    /// Closes the in-progress partial window (if any) at `end_cycle`.
    /// Call once after the simulation loop exits.
    pub fn finish(&mut self, end_cycle: u64, counters: CounterSnapshot) {
        if end_cycle > self.window_start {
            self.close(end_cycle, counters);
        }
    }

    fn close(&mut self, end_cycle: u64, counters: CounterSnapshot) {
        let sample = WindowSample {
            end_cycle,
            cycles: end_cycle - self.window_start,
            committed: counters.committed - self.base.committed,
            predictions: counters.predictions - self.base.predictions,
            correct_predictions: counters.correct_predictions - self.base.correct_predictions,
            iq_int_occupancy_sum: counters.iq_int_occupancy_sum - self.base.iq_int_occupancy_sum,
            iq_fp_occupancy_sum: counters.iq_fp_occupancy_sum - self.base.iq_fp_occupancy_sum,
        };
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(sample);
        self.window_start = end_cycle;
        self.base = counters;
    }

    /// Consumes the sampler, returning the retained windows (oldest
    /// first) and the number of evicted ones.
    pub fn into_windows(self) -> (Vec<WindowSample>, u64) {
        (self.windows.into(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(committed: u64) -> CounterSnapshot {
        CounterSnapshot { committed, ..CounterSnapshot::default() }
    }

    #[test]
    fn windows_carry_deltas() {
        let mut s = Sampler::new(10, 8);
        for now in 0..25u64 {
            s.tick(now, snap(2 * (now + 1)));
        }
        s.finish(25, snap(50));
        let (windows, dropped) = s.into_windows();
        assert_eq!(dropped, 0);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].end_cycle, 10);
        assert_eq!(windows[0].cycles, 10);
        assert_eq!(windows[0].committed, 20);
        assert_eq!(windows[2].cycles, 5);
        assert_eq!(windows[2].committed, 10);
        assert_eq!(windows[1].ipc(), 2.0);
        let total: u64 = windows.iter().map(|w| w.committed).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut s = Sampler::new(4, 3);
        for now in 0..40u64 {
            s.tick(now, snap(now + 1));
        }
        let (windows, dropped) = s.into_windows();
        assert_eq!(windows.len(), 3);
        assert_eq!(dropped, 7);
        assert_eq!(windows.last().unwrap().end_cycle, 40);
    }

    #[test]
    fn finish_without_partial_window_is_a_no_op() {
        let mut s = Sampler::new(5, 4);
        for now in 0..10u64 {
            s.tick(now, snap(now));
        }
        s.finish(10, snap(10));
        let (windows, _) = s.into_windows();
        assert_eq!(windows.len(), 2);
    }

    #[test]
    fn empty_window_rates_are_safe() {
        let w = WindowSample {
            end_cycle: 0,
            cycles: 0,
            committed: 0,
            predictions: 0,
            correct_predictions: 0,
            iq_int_occupancy_sum: 0,
            iq_fp_occupancy_sum: 0,
        };
        assert_eq!(w.ipc(), 0.0);
        assert_eq!(w.accuracy(), 1.0);
        assert_eq!(w.avg_iq_int_occupancy(), 0.0);
    }
}
