//! Per-PC (static instruction) predictor telemetry.
//!
//! Reproduces the paper's "which sites are predictable" analysis: a
//! dense table indexed by static-instruction PC accumulates prediction
//! outcomes, and the final report keeps two top-K views — the sites
//! whose mispredictions triggered recovery (where a scheme *loses*
//! cycles) and the most frequently correct sites (where it wins).

use rvp_json::{Json, ToJson};

/// Outcome counters for one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PcCell {
    predictions: u64,
    correct: u64,
    costly: u64,
}

/// One row of a top-K table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcEntry {
    /// Static-instruction index.
    pub pc: usize,
    /// Committed predictions at this site.
    pub predictions: u64,
    /// ... of which correct.
    pub correct: u64,
    /// Mispredictions that triggered recovery (a consumer existed).
    pub costly: u64,
}

impl PcEntry {
    /// Site-local prediction accuracy (1.0 when never predicted).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

impl ToJson for PcEntry {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pc", self.pc.into()),
            ("predictions", self.predictions.into()),
            ("correct", self.correct.into()),
            ("costly", self.costly.into()),
            ("accuracy", self.accuracy().into()),
        ])
    }
}

/// Dense per-PC outcome table, sized to the static program.
#[derive(Debug, Clone)]
pub struct PcTable {
    cells: Vec<PcCell>,
}

impl PcTable {
    /// A table for a program of `len` static instructions.
    pub fn new(len: usize) -> PcTable {
        PcTable { cells: vec![PcCell::default(); len] }
    }

    /// Records a committed prediction at `pc`.
    pub fn record_commit(&mut self, pc: usize, correct: bool) {
        if let Some(c) = self.cells.get_mut(pc) {
            c.predictions += 1;
            c.correct += u64::from(correct);
        }
    }

    /// Records a recovery-triggering misprediction at `pc`.
    pub fn record_costly(&mut self, pc: usize) {
        if let Some(c) = self.cells.get_mut(pc) {
            c.costly += 1;
        }
    }

    /// The `k` sites with the most costly mispredictions (ties broken
    /// by lower PC); sites with none are omitted.
    pub fn top_by_costly(&self, k: usize) -> Vec<PcEntry> {
        self.top_by(k, |e| e.costly)
    }

    /// The `k` sites with the most correct predictions (ties broken by
    /// lower PC); sites with none are omitted.
    pub fn top_by_correct(&self, k: usize) -> Vec<PcEntry> {
        self.top_by(k, |e| e.correct)
    }

    fn top_by(&self, k: usize, score: impl Fn(&PcEntry) -> u64) -> Vec<PcEntry> {
        let mut entries: Vec<PcEntry> = self
            .cells
            .iter()
            .enumerate()
            .map(|(pc, c)| PcEntry {
                pc,
                predictions: c.predictions,
                correct: c.correct,
                costly: c.costly,
            })
            .filter(|e| score(e) > 0)
            .collect();
        entries.sort_by(|a, b| score(b).cmp(&score(a)).then(a.pc.cmp(&b.pc)));
        entries.truncate(k);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_orders_and_truncates() {
        let mut t = PcTable::new(8);
        for _ in 0..5 {
            t.record_commit(3, true);
        }
        for _ in 0..2 {
            t.record_commit(1, true);
        }
        t.record_commit(6, false);
        t.record_costly(6);
        t.record_costly(6);
        t.record_costly(2);

        let correct = t.top_by_correct(2);
        assert_eq!(correct.iter().map(|e| e.pc).collect::<Vec<_>>(), vec![3, 1]);
        assert_eq!(correct[0].accuracy(), 1.0);

        let costly = t.top_by_costly(10);
        assert_eq!(costly.iter().map(|e| e.pc).collect::<Vec<_>>(), vec![6, 2]);
        assert_eq!(costly[0].costly, 2);
        assert_eq!(costly[0].accuracy(), 0.0);
    }

    #[test]
    fn ties_break_toward_lower_pc() {
        let mut t = PcTable::new(4);
        t.record_commit(2, true);
        t.record_commit(0, true);
        let top = t.top_by_correct(2);
        assert_eq!(top.iter().map(|e| e.pc).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn out_of_range_pc_is_ignored() {
        let mut t = PcTable::new(2);
        t.record_commit(99, true);
        t.record_costly(99);
        assert!(t.top_by_correct(4).is_empty());
        assert!(t.top_by_costly(4).is_empty());
    }
}
