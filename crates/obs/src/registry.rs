//! A unified metrics registry with Prometheus text exposition.
//!
//! The workspace grew counters in four places — [`ServeMetrics`],
//! the runner's `SourceCounters`, `rvp-fail`'s fired-site counters and
//! the trace store's quarantine count — each with its own snapshot
//! shape. [`MetricsRegistry`] unifies them behind one pull model:
//! subsystems register a collector closure, and `/metrics?format=prom`
//! (or [`MetricsRegistry::to_json`]) gathers them all at request time.
//! Collectors read relaxed atomics, so gathering is cheap and a
//! slightly torn reading is acceptable (monitoring, not accounting).
//!
//! [`ServeMetrics`]: crate::ServeMetrics

use std::fmt::Write as _;
use std::sync::Mutex;

use rvp_json::Json;

/// What kind of time series a metric is, for the Prometheus `# TYPE`
/// comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing (resets only on restart).
    Counter,
    /// Goes up and down (queue depth, hit rate).
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One gathered sample.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus-style snake_case name, e.g. `rvp_serve_requests_total`.
    pub name: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Label pairs rendered as `{k="v"}`; empty for plain metrics.
    pub labels: Vec<(&'static str, String)>,
    /// The sample. Counters should hold integral values.
    pub value: f64,
}

impl Metric {
    /// An unlabelled counter sample.
    pub fn counter(name: &'static str, value: u64) -> Metric {
        Metric { name, kind: MetricKind::Counter, labels: Vec::new(), value: value as f64 }
    }

    /// An unlabelled gauge sample.
    pub fn gauge(name: &'static str, value: f64) -> Metric {
        Metric { name, kind: MetricKind::Gauge, labels: Vec::new(), value }
    }

    /// Adds one label pair.
    pub fn with_label(mut self, key: &'static str, value: impl Into<String>) -> Metric {
        self.labels.push((key, value.into()));
        self
    }
}

type Collector = Box<dyn Fn() -> Vec<Metric> + Send + Sync>;

/// A pull-model registry: collectors registered once at wiring time,
/// gathered on every exposition.
#[derive(Default)]
pub struct MetricsRegistry {
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.collectors.lock().map(|c| c.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("collectors", &n).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers one collector; its metrics appear in every subsequent
    /// gather, in registration order.
    pub fn register(&self, collect: impl Fn() -> Vec<Metric> + Send + Sync + 'static) {
        self.collectors.lock().unwrap().push(Box::new(collect));
    }

    /// Runs every collector and concatenates the samples.
    pub fn gather(&self) -> Vec<Metric> {
        self.collectors.lock().unwrap().iter().flat_map(|c| c()).collect()
    }

    /// Prometheus text exposition (format version 0.0.4): a `# TYPE`
    /// comment per metric name followed by its samples.
    pub fn to_prometheus(&self) -> String {
        let metrics = self.gather();
        let mut out = String::new();
        let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for metric in &metrics {
            if typed.insert(metric.name) {
                let _ = writeln!(out, "# TYPE {} {}", metric.name, metric.kind.as_str());
            }
            out.push_str(metric.name);
            if !metric.labels.is_empty() {
                out.push('{');
                for (i, (key, value)) in metric.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{key}=\"{}\"", escape_label(value));
                }
                out.push('}');
            }
            if metric.value.fract() == 0.0 && metric.value.abs() < 1e15 {
                let _ = writeln!(out, " {}", metric.value as i64);
            } else {
                let _ = writeln!(out, " {}", metric.value);
            }
        }
        out
    }

    /// The same gather as a JSON object, `name{labels}` as keys.
    pub fn to_json(&self) -> Json {
        let pairs = self
            .gather()
            .into_iter()
            .map(|metric| {
                let mut key = metric.name.to_owned();
                if !metric.labels.is_empty() {
                    key.push('{');
                    for (i, (name, value)) in metric.labels.iter().enumerate() {
                        if i > 0 {
                            key.push(',');
                        }
                        let _ = write!(key, "{name}=\"{value}\"");
                    }
                    key.push('}');
                }
                let value = if metric.value.fract() == 0.0 && metric.value >= 0.0 {
                    Json::from(metric.value as u64)
                } else {
                    Json::from(metric.value)
                };
                (key, value)
            })
            .collect();
        Json::Obj(pairs)
    }
}

/// Escapes a label value per the exposition format: backslash, quote
/// and newline.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_exposition_types_labels_and_values() {
        let registry = MetricsRegistry::new();
        registry.register(|| {
            vec![
                Metric::counter("rvp_test_total", 3),
                Metric::counter("rvp_sites_total", 1).with_label("site", "grid.cell.run"),
                Metric::counter("rvp_sites_total", 2).with_label("site", "trace.store.open"),
                Metric::gauge("rvp_rate", 0.75),
            ]
        });
        let text = registry.to_prometheus();
        assert!(text.contains("# TYPE rvp_test_total counter\n"), "{text}");
        assert!(text.contains("rvp_test_total 3\n"), "{text}");
        // One TYPE line even with two labelled samples.
        assert_eq!(text.matches("# TYPE rvp_sites_total").count(), 1, "{text}");
        assert!(text.contains("rvp_sites_total{site=\"grid.cell.run\"} 1\n"), "{text}");
        assert!(text.contains("rvp_rate 0.75\n"), "{text}");
        let json = registry.to_json();
        assert_eq!(json.get("rvp_test_total").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn collectors_gather_in_registration_order() {
        let registry = MetricsRegistry::new();
        registry.register(|| vec![Metric::counter("first_total", 1)]);
        registry.register(|| vec![Metric::counter("second_total", 2)]);
        let names: Vec<&str> = registry.gather().iter().map(|m| m.name).collect();
        assert_eq!(names, ["first_total", "second_total"]);
    }
}
