//! Runtime observability configuration.

/// What the simulator should record beyond its always-on aggregate
/// stats and CPI stack.
///
/// The default is fully off: no sampler, no per-PC table, no per-cycle
/// work beyond the O(1) cycle-accounting ladder. The bench path relies
/// on this — see `benches/obs_overhead.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Cycles per time-series window; `0` disables sampling.
    pub sample_interval: u64,
    /// Maximum retained windows; older windows are dropped (and
    /// counted) once the ring is full.
    pub ring_capacity: usize,
    /// Track per-static-instruction prediction outcomes.
    pub track_pc: bool,
    /// Entries kept in each top-K table of the final report.
    pub top_k: usize,
}

impl ObsConfig {
    /// Everything off; the zero-overhead default.
    pub fn off() -> ObsConfig {
        ObsConfig { sample_interval: 0, ring_capacity: 0, track_pc: false, top_k: 0 }
    }

    /// The standard instrumented configuration: 4096-cycle windows in a
    /// 1024-window ring (~4M cycles of history), per-PC tracking, and
    /// 16-entry top-K tables.
    pub fn standard() -> ObsConfig {
        ObsConfig { sample_interval: 4096, ring_capacity: 1024, track_pc: true, top_k: 16 }
    }

    /// Whether any optional instrumentation is on.
    pub fn enabled(&self) -> bool {
        self.sample_interval > 0 || self.track_pc
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        assert!(!ObsConfig::default().enabled());
        assert!(ObsConfig::standard().enabled());
        assert!(ObsConfig { track_pc: true, ..ObsConfig::off() }.enabled());
    }
}
