//! The per-run observability artifact.

use rvp_json::{Json, ToJson};

use crate::pcstats::PcEntry;
use crate::sample::WindowSample;

/// Everything the optional instrumentation recorded during one run:
/// the time series and the per-PC top-K tables. (The CPI stack is
/// always on and lives in `SimStats` directly.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Cycles per sampling window (0 when sampling was off).
    pub sample_interval: u64,
    /// Retained windows, oldest first.
    pub samples: Vec<WindowSample>,
    /// Windows evicted because the ring filled.
    pub dropped_windows: u64,
    /// Sites with the most recovery-triggering mispredictions.
    pub top_costly: Vec<PcEntry>,
    /// Sites with the most correct predictions.
    pub top_correct: Vec<PcEntry>,
}

impl ObsReport {
    /// IPC over the first retained window — a warm-up indicator.
    pub fn warmup_ipc(&self) -> Option<f64> {
        self.samples.first().map(WindowSample::ipc)
    }

    /// Committed-weighted IPC over the rest of the retained windows —
    /// the steady-state estimate `warmup_ipc` is compared against.
    pub fn steady_ipc(&self) -> Option<f64> {
        let rest = self.samples.get(1..)?;
        let cycles: u64 = rest.iter().map(|w| w.cycles).sum();
        let committed: u64 = rest.iter().map(|w| w.committed).sum();
        (cycles > 0).then(|| committed as f64 / cycles as f64)
    }
}

impl ToJson for ObsReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sample_interval", self.sample_interval.into()),
            ("dropped_windows", self.dropped_windows.into()),
            ("samples", Json::arr(self.samples.iter().map(ToJson::to_json))),
            ("top_costly", Json::arr(self.top_costly.iter().map(ToJson::to_json))),
            ("top_correct", Json::arr(self.top_correct.iter().map(ToJson::to_json))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(end: u64, cycles: u64, committed: u64) -> WindowSample {
        WindowSample {
            end_cycle: end,
            cycles,
            committed,
            predictions: 0,
            correct_predictions: 0,
            iq_int_occupancy_sum: 0,
            iq_fp_occupancy_sum: 0,
        }
    }

    #[test]
    fn warmup_vs_steady() {
        let r = ObsReport {
            sample_interval: 10,
            samples: vec![window(10, 10, 5), window(20, 10, 20), window(30, 10, 20)],
            ..ObsReport::default()
        };
        assert_eq!(r.warmup_ipc(), Some(0.5));
        assert_eq!(r.steady_ipc(), Some(2.0));
        assert_eq!(ObsReport::default().warmup_ipc(), None);
        assert_eq!(ObsReport::default().steady_ipc(), None);
    }

    #[test]
    fn json_shape() {
        let r = ObsReport {
            sample_interval: 10,
            samples: vec![window(10, 10, 5)],
            dropped_windows: 2,
            top_costly: vec![PcEntry { pc: 4, predictions: 3, correct: 1, costly: 2 }],
            top_correct: Vec::new(),
        };
        let j = r.to_json();
        assert_eq!(j.get("dropped_windows").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(j.get("samples").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        let costly = &j.get("top_costly").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(costly.get("pc").and_then(|v| v.as_u64()), Some(4));
    }
}
