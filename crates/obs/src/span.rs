//! Hierarchical, thread-aware span tracing with Perfetto/flamegraph
//! export.
//!
//! The tracer answers one question the CPI stacks cannot: where does
//! *wall-clock* time go across the serve → grid → cell → simulator
//! stack? Guards ([`enter`] / the [`span!`] macro) time a scope and
//! record its parent, so the trace is a forest; every record carries a
//! thread id and arbitrary correlation fields (job id, cell label,
//! trace fingerprint) shared with the `RVP_LOG` lines emitted from the
//! same scopes.
//!
//! # Cost model
//!
//! The tracer is *disarmed* by default. A disarmed [`enter`] is one
//! relaxed atomic load and returns an empty guard — no allocation, no
//! clock read, no lock (the disarmed-overhead gate in
//! `tests/span_disarmed_gate.rs` proves the no-allocation part with a
//! counting allocator, and the `obs_overhead` bench gates the wall
//! clock). When armed, completed spans collect in a per-thread buffer
//! and are drained into a bounded global ring in chunks — at top-level
//! span completion or every [`FLUSH_CHUNK`] spans — so the global lock
//! is amortized, not per-span. A full ring drops new spans and counts
//! them ([`TraceData::dropped`]); it never blocks or grows.
//!
//! # Exporters
//!
//! [`chrome_trace_json`] renders Chrome trace-event JSON (`"ph":"X"`
//! complete events; open directly in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing`), with `span_id`/`parent_id` in each event's
//! `args` since complete events have no native hierarchy.
//! [`folded_stacks`] renders `root;child;leaf <self_us>` lines for
//! flamegraph tooling. [`from_chrome_trace`] parses the JSON back for
//! `rvp-report`'s spans section and the round-trip tests.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use rvp_json::Json;

use crate::clock::Clock;

/// Per-thread completed-span buffer size that forces a flush into the
/// global ring even mid-nest (bounds memory under recovery bursts).
pub const FLUSH_CHUNK: usize = 256;

/// Default global ring capacity when arming without an explicit one.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter/id.
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Free-form label.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(v) => (*v).into(),
            FieldValue::F64(v) => (*v).into(),
            FieldValue::Str(v) => v.as_str().into(),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// A span field: name plus value. Names are `'static` when built by the
/// [`span!`] macro and owned when parsed back from an exported trace.
pub type Field = (Cow<'static, str>, FieldValue);

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique nonzero id.
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Scope name, e.g. `serve.request` or `sim.steady`.
    pub name: Cow<'static, str>,
    /// Start, microseconds on the tracer clock.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Small process-local thread id (assigned in thread-start order).
    pub tid: u64,
    /// Correlation fields (job/cell ids, fingerprints, labels).
    pub fields: Vec<Field>,
}

impl SpanRecord {
    /// The field with the given name, if present.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// A drained or snapshotted trace: the spans plus how many were lost to
/// the ring bound.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Completed spans, in ring (roughly completion) order.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the ring was full when they completed.
    pub dropped: u64,
}

// --------------------------------------------------------------------
// Global tracer state.

static ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Ring {
    spans: Vec<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring { spans: Vec::new(), capacity: 0, dropped: 0 });

/// The clock timestamps are read from. Swappable (with the mock) only
/// via [`arm_with_clock`]; guards clone it once at creation.
static TRACER_CLOCK: Mutex<Clock> = Mutex::new(Clock::Monotonic);

fn tracer_clock() -> Clock {
    TRACER_CLOCK.lock().unwrap().clone()
}

/// A clone of the tracer's clock. Long-lived instrumentation (the sim
/// cycle loop, queue-wait accounting) captures it once and reads
/// timestamps lock-free instead of paying the clock lock per reading.
pub fn clock() -> Clock {
    tracer_clock()
}

/// A reading of the tracer's clock, for explicit-timestamp spans built
/// with [`record`]. Call only when [`armed`] — it takes the clock lock.
pub fn now_us() -> u64 {
    tracer_clock().now_us()
}

/// Arms the tracer with the given ring capacity, clearing anything a
/// previous arming left behind. Timestamps come from the monotonic
/// process clock.
pub fn arm(capacity: usize) {
    arm_with_clock(capacity, Clock::Monotonic);
}

/// [`arm`], but timestamps come from `clock` — pass a [`Clock::mock`]
/// in tests for deterministic span times.
pub fn arm_with_clock(capacity: usize, clock: Clock) {
    *TRACER_CLOCK.lock().unwrap() = clock;
    {
        let mut ring = RING.lock().unwrap();
        ring.spans.clear();
        ring.capacity = capacity.max(1);
        ring.dropped = 0;
    }
    ARMED.store(true, Ordering::Release);
}

/// Disarms the tracer. Already-buffered spans stay drainable; guards
/// created while armed still record on drop.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether the tracer is recording. One relaxed load — this is the
/// entire disarmed cost of [`enter`].
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

// --------------------------------------------------------------------
// Per-thread buffers.

struct ThreadBuf {
    tid: u64,
    /// Ids of the spans currently open on this thread, innermost last.
    stack: Vec<u64>,
    /// Completed spans not yet flushed to the global ring.
    done: Vec<SpanRecord>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if self.done.is_empty() {
            return;
        }
        let mut ring = RING.lock().unwrap();
        for span in self.done.drain(..) {
            if ring.spans.len() < ring.capacity {
                ring.spans.push(span);
            } else {
                ring.dropped += 1;
            }
        }
    }
}

impl Drop for ThreadBuf {
    // A thread exiting mid-nest still publishes what it completed.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        done: Vec::new(),
    });
}

/// The innermost open span id on this thread (0 when none). Hand it to
/// another thread and open the work there with [`child_of`] to keep
/// cross-thread work parented.
pub fn current() -> u64 {
    if !armed() {
        return 0;
    }
    TLS.with(|tls| tls.borrow().stack.last().copied().unwrap_or(0))
}

// --------------------------------------------------------------------
// Guards.

struct Active {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    start_us: u64,
    clock: Clock,
    fields: Vec<Field>,
}

/// An open span; records itself on drop. Empty (and free) when the
/// tracer is disarmed.
pub struct SpanGuard {
    active: Option<Active>,
}

impl SpanGuard {
    /// This span's id, or 0 when the tracer was disarmed at creation.
    /// Use it to parent cross-thread work via [`child_of`].
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }

    /// Attaches a field discovered after the span opened (an outcome,
    /// a retry count). No-op on a disarmed guard.
    pub fn add_field(&mut self, name: impl Into<Cow<'static, str>>, value: impl Into<FieldValue>) {
        if let Some(active) = &mut self.active {
            active.fields.push((name.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let end_us = active.clock.now_us();
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            start_us: active.start_us,
            dur_us: end_us.saturating_sub(active.start_us),
            tid: 0, // filled below from the thread buffer
            fields: active.fields,
        };
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            // Guards usually drop in LIFO order; tolerate a moved guard
            // outliving its scope by removing its id wherever it sits.
            if let Some(pos) = tls.stack.iter().rposition(|&id| id == record.id) {
                tls.stack.remove(pos);
            }
            let mut record = record;
            record.tid = tls.tid;
            tls.done.push(record);
            if tls.stack.is_empty() || tls.done.len() >= FLUSH_CHUNK {
                tls.flush();
            }
        });
    }
}

fn open(name: &'static str, explicit_parent: Option<u64>, fields: Vec<Field>) -> SpanGuard {
    let clock = tracer_clock();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        let parent = explicit_parent.unwrap_or_else(|| tls.stack.last().copied().unwrap_or(0));
        tls.stack.push(id);
        parent
    });
    SpanGuard {
        active: Some(Active {
            id,
            parent,
            name: Cow::Borrowed(name),
            start_us: clock.now_us(),
            clock,
            fields,
        }),
    }
}

/// Opens a span parented to this thread's innermost open span (a root
/// when there is none). Disarmed: a single relaxed load, empty guard.
pub fn enter(name: &'static str) -> SpanGuard {
    if !armed() {
        return SpanGuard { active: None };
    }
    open(name, None, Vec::new())
}

/// [`enter`] with correlation fields. The closure runs only when armed,
/// so building field values costs nothing when disarmed.
pub fn enter_with(name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> SpanGuard {
    if !armed() {
        return SpanGuard { active: None };
    }
    open(name, None, fields())
}

/// Opens a span under an explicit parent id — the cross-thread handoff
/// (e.g. a queued cell executing on a worker, parented to the request
/// span that enqueued it). `parent` 0 makes a root.
pub fn child_of(parent: u64, name: &'static str, fields: impl FnOnce() -> Vec<Field>) -> SpanGuard {
    if !armed() {
        return SpanGuard { active: None };
    }
    open(name, Some(parent), fields())
}

/// Records an already-measured interval (explicit timestamps on the
/// tracer clock) straight into the ring — for spans whose start and end
/// live on different threads, like queue wait. Returns the span id, or
/// 0 when disarmed.
pub fn record(
    name: &'static str,
    parent: u64,
    start_us: u64,
    end_us: u64,
    fields: Vec<Field>,
) -> u64 {
    if !armed() {
        return 0;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let tid = TLS.with(|tls| tls.borrow().tid);
    let span = SpanRecord {
        id,
        parent,
        name: Cow::Borrowed(name),
        start_us,
        dur_us: end_us.saturating_sub(start_us),
        tid,
        fields,
    };
    let mut ring = RING.lock().unwrap();
    if ring.spans.len() < ring.capacity {
        ring.spans.push(span);
        id
    } else {
        ring.dropped += 1;
        0
    }
}

/// Flushes this thread's buffered spans into the ring (drains and
/// snapshots already see every *completed top-level* span; this is for
/// a thread that wants its mid-nest completions visible now).
pub fn flush_thread() {
    TLS.with(|tls| tls.borrow_mut().flush());
}

/// Removes and returns everything in the ring.
pub fn drain() -> TraceData {
    flush_thread();
    let mut ring = RING.lock().unwrap();
    let data = TraceData { spans: std::mem::take(&mut ring.spans), dropped: ring.dropped };
    ring.dropped = 0;
    data
}

/// Copies the ring without clearing it — what `GET /trace` serves, so
/// repeated fetches see a growing trace.
pub fn snapshot() -> TraceData {
    flush_thread();
    let ring = RING.lock().unwrap();
    TraceData { spans: ring.spans.clone(), dropped: ring.dropped }
}

// --------------------------------------------------------------------
// The span! macro.

/// Opens a [`SpanGuard`]: `span!("cell.run")`, or with correlation
/// fields `span!("cell.run", {fnv, label: cell.label().as_str()})` — a
/// bare identifier is shorthand for `name: name`. Fields are only
/// evaluated when the tracer is armed.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, { $($key:ident $(: $val:expr)?),+ $(,)? }) => {
        $crate::span::enter_with($name, || vec![
            $((
                std::borrow::Cow::Borrowed(stringify!($key)),
                $crate::span::FieldValue::from($crate::span_field_value!($key $(: $val)?)),
            )),+
        ])
    };
}

/// Helper for [`span!`]: a bare `ident` field evaluates the identifier
/// itself; `ident: expr` evaluates the expression.
#[doc(hidden)]
#[macro_export]
macro_rules! span_field_value {
    ($key:ident) => {
        $key
    };
    ($key:ident : $val:expr) => {
        $val
    };
}

// --------------------------------------------------------------------
// Exporters.

/// Renders a trace as Chrome trace-event JSON — the object form
/// (`{"traceEvents": [...]}`) with `"ph":"X"` complete events, which
/// Perfetto and `chrome://tracing` open directly. Complete events have
/// no native parent links, so every event's `args` carries `span_id`
/// and `parent_id` alongside the correlation fields.
pub fn chrome_trace_json(data: &TraceData) -> Json {
    let events: Vec<Json> = data
        .spans
        .iter()
        .map(|span| {
            let mut args = vec![
                ("span_id".to_owned(), Json::from(span.id)),
                ("parent_id".to_owned(), Json::from(span.parent)),
            ];
            for (name, value) in &span.fields {
                args.push((name.clone().into_owned(), value.to_json()));
            }
            Json::obj([
                ("name", Json::from(span.name.as_ref())),
                ("cat", "rvp".into()),
                ("ph", "X".into()),
                ("ts", span.start_us.into()),
                ("dur", span.dur_us.into()),
                ("pid", 1u64.into()),
                ("tid", span.tid.into()),
                ("args", Json::Obj(args)),
            ])
        })
        .collect();
    Json::obj([
        ("traceEvents", Json::arr(events)),
        ("displayTimeUnit", "ms".into()),
        ("otherData", Json::obj([("dropped_spans", data.dropped.into())])),
    ])
}

/// Parses [`chrome_trace_json`] output back into a [`TraceData`] —
/// the report reader and the round-trip tests. Non-`X` events and
/// events without a `span_id` are skipped.
pub fn from_chrome_trace(json: &Json) -> Option<TraceData> {
    let events = json.get("traceEvents")?.as_arr()?;
    let dropped = json
        .get("otherData")
        .and_then(|o| o.get("dropped_spans"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let mut spans = Vec::with_capacity(events.len());
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = event.get("args");
        let Some(id) = args.and_then(|a| a.get("span_id")).and_then(Json::as_u64) else {
            continue;
        };
        let mut fields = Vec::new();
        if let Some(Json::Obj(pairs)) = args {
            for (name, value) in pairs {
                if name == "span_id" || name == "parent_id" {
                    continue;
                }
                let value = match value {
                    Json::UInt(v) => FieldValue::U64(*v),
                    Json::Float(v) => FieldValue::F64(*v),
                    Json::Str(v) => FieldValue::Str(v.clone()),
                    _ => continue,
                };
                fields.push((Cow::Owned(name.clone()), value));
            }
        }
        spans.push(SpanRecord {
            id,
            parent: args.and_then(|a| a.get("parent_id")).and_then(Json::as_u64).unwrap_or(0),
            name: Cow::Owned(
                event.get("name").and_then(Json::as_str).unwrap_or("unnamed").to_owned(),
            ),
            start_us: event.get("ts").and_then(Json::as_u64).unwrap_or(0),
            dur_us: event.get("dur").and_then(Json::as_u64).unwrap_or(0),
            tid: event.get("tid").and_then(Json::as_u64).unwrap_or(0),
            fields,
        });
    }
    Some(TraceData { spans, dropped })
}

/// Renders `parent;child;leaf <self_us>` folded-stack lines (sorted,
/// merged), the input format of flamegraph tooling. Values are self
/// time: a span's duration minus its children's.
pub fn folded_stacks(data: &TraceData) -> String {
    let by_id: HashMap<u64, &SpanRecord> = data.spans.iter().map(|s| (s.id, s)).collect();
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for span in &data.spans {
        let mut path = vec![span.name.as_ref()];
        let mut cursor = span.parent;
        // Walk to the root, defensively bounded against parent cycles
        // in a hand-edited trace.
        for _ in 0..data.spans.len() {
            let Some(parent) = by_id.get(&cursor) else { break };
            path.push(parent.name.as_ref());
            cursor = parent.parent;
        }
        path.reverse();
        *merged.entry(path.join(";")).or_insert(0) += self_time_us(span, data);
    }
    let mut out = String::new();
    for (path, us) in merged {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// Writes a trace to `path` via `Json::to_writer` streaming: folded
/// stacks when the extension is `.folded`, Chrome trace-event JSON
/// otherwise.
pub fn write_trace_file(path: &Path, data: &TraceData) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    if path.extension().is_some_and(|e| e == "folded") {
        out.write_all(folded_stacks(data).as_bytes())?;
    } else {
        chrome_trace_json(data).to_writer(&mut out)?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

// --------------------------------------------------------------------
// Analysis (rvp-report's spans section).

/// A span's self time: duration minus the summed durations of its
/// direct children (saturating — overlapping child clocks can exceed
/// the parent on a multi-threaded trace).
pub fn self_time_us(span: &SpanRecord, data: &TraceData) -> u64 {
    let children: u64 = data.spans.iter().filter(|s| s.parent == span.id).map(|s| s.dur_us).sum();
    span.dur_us.saturating_sub(children)
}

/// Total self time and count per span name, heaviest first.
pub fn self_time_by_name(data: &TraceData) -> Vec<(String, u64, u64)> {
    let mut by_name: HashMap<&str, (u64, u64)> = HashMap::new();
    for span in &data.spans {
        let slot = by_name.entry(span.name.as_ref()).or_insert((0, 0));
        slot.0 += self_time_us(span, data);
        slot.1 += 1;
    }
    let mut rows: Vec<(String, u64, u64)> =
        by_name.into_iter().map(|(name, (us, n))| (name.to_owned(), us, n)).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// The critical path under `root`: from the root, repeatedly descend
/// into the longest child. Returns the chain including the root.
pub fn critical_path<'a>(data: &'a TraceData, root: &'a SpanRecord) -> Vec<&'a SpanRecord> {
    let mut path = vec![root];
    let mut cursor = root;
    for _ in 0..data.spans.len() {
        let Some(next) =
            data.spans.iter().filter(|s| s.parent == cursor.id).max_by_key(|s| s.dur_us)
        else {
            break;
        };
        path.push(next);
        cursor = next;
    }
    path
}

/// Root spans (no recorded parent), longest first.
pub fn roots(data: &TraceData) -> Vec<&SpanRecord> {
    let ids: std::collections::HashSet<u64> = data.spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> =
        data.spans.iter().filter(|s| s.parent == 0 || !ids.contains(&s.parent)).collect();
    roots.sort_by_key(|s| std::cmp::Reverse(s.dur_us));
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; every test that arms it holds this.
    pub(super) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_guard_is_empty_and_records_nothing() {
        let _lock = test_lock();
        disarm();
        let guard = span!("idle", { n: 7u64 });
        assert_eq!(guard.id(), 0);
        drop(guard);
        arm(16);
        assert!(drain().spans.is_empty());
        disarm();
    }

    #[test]
    fn ring_bound_drops_and_counts() {
        let _lock = test_lock();
        arm_with_clock(2, Clock::mock(0));
        for _ in 0..5 {
            drop(enter("tiny"));
        }
        let data = drain();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.dropped, 3);
        disarm();
    }

    #[test]
    fn folded_stacks_carry_self_time() {
        let _lock = test_lock();
        let clock = Clock::mock(0);
        arm_with_clock(64, clock.clone());
        {
            let _outer = enter("outer");
            clock.advance_us(10);
            {
                let _inner = enter("inner");
                clock.advance_us(30);
            }
            clock.advance_us(5);
        }
        let folded = folded_stacks(&drain());
        assert!(folded.contains("outer 15\n"), "{folded:?}");
        assert!(folded.contains("outer;inner 30\n"), "{folded:?}");
        disarm();
    }

    #[test]
    fn critical_path_follows_longest_child() {
        let _lock = test_lock();
        let clock = Clock::mock(0);
        arm_with_clock(64, clock.clone());
        {
            let _root = enter("root");
            {
                let _short = enter("short");
                clock.advance_us(5);
            }
            {
                let _long = enter("long");
                clock.advance_us(50);
                let _leaf = enter("leaf");
                clock.advance_us(10);
            }
        }
        let data = drain();
        let roots = roots(&data);
        assert_eq!(roots.len(), 1);
        let path: Vec<&str> =
            critical_path(&data, roots[0]).iter().map(|s| s.name.as_ref()).collect();
        assert_eq!(path, ["root", "long", "leaf"]);
        disarm();
    }
}
