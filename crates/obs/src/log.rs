//! Structured, leveled logging facade.
//!
//! A process-wide logger emitting one JSON object per line, filtered by
//! the `RVP_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`; default `warn`) and written to stderr or, when
//! `RVP_LOG_FILE` names a path, appended to that file. Replaces the
//! scattered bare `eprintln!`s so that warnings from a 135-cell grid
//! run are machine-collectable instead of interleaved prose.
//!
//! ```
//! use rvp_obs::log::{self, Level};
//!
//! log::warn("doctest", "trace replay failed", &[("workload", "li".into())]);
//! assert!(log::enabled(Level::Error));
//! ```

use std::fmt;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use rvp_json::Json;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error,
    /// Something degraded but the run continues (the default filter).
    Warn,
    /// Progress and summary events.
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    /// Stable lowercase name, as emitted in the JSON line.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses an `RVP_LOG` filter value; `None` means `off`.
    /// Unrecognized values fall back to the default (`warn`).
    pub fn parse_filter(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => None,
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => Some(Level::Warn),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

struct Logger {
    filter: Option<Level>,
    sink: Sink,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| {
        let filter = match std::env::var("RVP_LOG") {
            Ok(v) => Level::parse_filter(&v),
            Err(_) => Some(Level::Warn),
        };
        let sink = match std::env::var("RVP_LOG_FILE") {
            Ok(path) if !path.is_empty() => {
                match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                    Ok(f) => Sink::File(Mutex::new(f)),
                    Err(e) => {
                        eprintln!("warning: RVP_LOG_FILE={path} unusable ({e}); using stderr");
                        Sink::Stderr
                    }
                }
            }
            _ => Sink::Stderr,
        };
        Logger { filter, sink }
    })
}

/// Whether events at `level` pass the current filter.
pub fn enabled(level: Level) -> bool {
    logger().filter.is_some_and(|f| level <= f)
}

/// Renders one event as its JSON line (without the trailing newline).
/// Exposed for tests; use [`log`] to emit.
pub fn format_line(level: Level, module: &str, msg: &str, fields: &[(&str, Json)]) -> String {
    let ts_us =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
    let mut pairs: Vec<(String, Json)> = vec![
        ("ts_us".into(), ts_us.into()),
        ("level".into(), level.name().into()),
        ("module".into(), module.into()),
        ("msg".into(), msg.into()),
    ];
    pairs.extend(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
    Json::Obj(pairs).to_string()
}

/// Emits one structured event if `level` passes the filter.
pub fn log(level: Level, module: &str, msg: &str, fields: &[(&str, Json)]) {
    if !enabled(level) {
        return;
    }
    let line = format_line(level, module, msg, fields);
    match &logger().sink {
        Sink::Stderr => eprintln!("{line}"),
        Sink::File(f) => {
            let mut f = f.lock().expect("log file poisoned");
            // A failing log write must never take the experiment down.
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Emits an [`Level::Error`] event.
pub fn error(module: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Error, module, msg, fields);
}

/// Emits a [`Level::Warn`] event.
pub fn warn(module: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Warn, module, msg, fields);
}

/// Emits an [`Level::Info`] event.
pub fn info(module: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Info, module, msg, fields);
}

/// Emits a [`Level::Debug`] event.
pub fn debug(module: &str, msg: &str, fields: &[(&str, Json)]) {
    log(Level::Debug, module, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing() {
        assert_eq!(Level::parse_filter("off"), None);
        assert_eq!(Level::parse_filter("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse_filter("debug"), Some(Level::Debug));
        assert_eq!(Level::parse_filter("trace"), Some(Level::Debug));
        assert_eq!(Level::parse_filter("bogus"), Some(Level::Warn));
    }

    #[test]
    fn severity_orders_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn lines_are_valid_json_with_fields() {
        let line = format_line(
            Level::Warn,
            "core::runner",
            "trace replay failed",
            &[("workload", "li".into()), ("fallbacks", Json::from(3u64))],
        );
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(j.get("module").and_then(Json::as_str), Some("core::runner"));
        assert_eq!(j.get("msg").and_then(Json::as_str), Some("trace replay failed"));
        assert_eq!(j.get("workload").and_then(Json::as_str), Some("li"));
        assert_eq!(j.get("fallbacks").and_then(|v| v.as_u64()), Some(3));
        assert!(j.get("ts_us").is_some());
    }
}
