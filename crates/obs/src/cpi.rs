//! Cycle-accounting CPI stacks.
//!
//! The timing simulator attributes every elapsed cycle to exactly one
//! [`CpiBucket`], so a [`CpiStack`]'s bucket counts sum to the run's
//! total cycles *by construction*. Dividing each bucket by committed
//! instructions yields the classic CPI-stack decomposition that makes
//! "IPC went down" diagnosable: the stack says *where* the cycles went.
//!
//! The attribution rules (which bucket wins when a cycle has several
//! plausible causes) are a fixed priority ladder documented in
//! `DESIGN.md`; [`CpiBucket`] variants are listed in that priority
//! order.

use rvp_json::{Json, ToJson};

/// The single cause a cycle is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpiBucket {
    /// Useful work: at least one instruction committed this cycle.
    /// Also the residual bucket for dependence/FU-limited execution.
    Base,
    /// Forward progress blocked by re-execution of instructions
    /// invalidated by a value mispredict (reissue/selective recovery).
    Reissue,
    /// The ROB head is an in-flight load delayed by a data-cache or TLB
    /// miss.
    DCache,
    /// Dispatch was blocked by a full ROB, instruction queue, or rename
    /// register file while nothing committed.
    QueueFull,
    /// The machine is empty and fetch is repairing a value-mispredict
    /// squash (refetch recovery).
    ValueRefetch,
    /// The machine is empty and fetch is stalled on (or refilling
    /// after) a mispredicted branch.
    BranchMispredict,
    /// The machine is empty and fetch is blocked by an
    /// instruction-cache fill.
    ICache,
    /// The machine is empty for any other front-end reason (initial
    /// pipeline fill, frontend latency, trace exhausted).
    FetchStall,
}

impl CpiBucket {
    /// Stable JSON/report key for this bucket.
    pub fn key(self) -> &'static str {
        match self {
            CpiBucket::Base => "base",
            CpiBucket::Reissue => "reissue",
            CpiBucket::DCache => "dcache",
            CpiBucket::QueueFull => "queue_full",
            CpiBucket::ValueRefetch => "value_refetch",
            CpiBucket::BranchMispredict => "branch_mispredict",
            CpiBucket::ICache => "icache",
            CpiBucket::FetchStall => "fetch_stall",
        }
    }

    /// Every bucket, in attribution-priority order.
    pub fn all() -> [CpiBucket; 8] {
        [
            CpiBucket::Base,
            CpiBucket::Reissue,
            CpiBucket::DCache,
            CpiBucket::QueueFull,
            CpiBucket::ValueRefetch,
            CpiBucket::BranchMispredict,
            CpiBucket::ICache,
            CpiBucket::FetchStall,
        ]
    }
}

/// Cycles charged to each [`CpiBucket`]; sums to the run's `cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpiStack {
    /// Commit/base cycles (useful work and execution-limited waits).
    pub base: u64,
    /// Reissue re-execution cycles.
    pub reissue: u64,
    /// Data-cache/memory-bound cycles.
    pub dcache: u64,
    /// Queue-full backpressure cycles.
    pub queue_full: u64,
    /// Value-mispredict refetch repair cycles.
    pub value_refetch: u64,
    /// Branch-mispredict stall/refill cycles.
    pub branch_mispredict: u64,
    /// Instruction-cache fill cycles.
    pub icache: u64,
    /// Other empty-machine front-end cycles.
    pub fetch_stall: u64,
}

impl CpiStack {
    /// Charges `n` cycles to `bucket`.
    pub fn add(&mut self, bucket: CpiBucket, n: u64) {
        *self.slot(bucket) += n;
    }

    fn slot(&mut self, bucket: CpiBucket) -> &mut u64 {
        match bucket {
            CpiBucket::Base => &mut self.base,
            CpiBucket::Reissue => &mut self.reissue,
            CpiBucket::DCache => &mut self.dcache,
            CpiBucket::QueueFull => &mut self.queue_full,
            CpiBucket::ValueRefetch => &mut self.value_refetch,
            CpiBucket::BranchMispredict => &mut self.branch_mispredict,
            CpiBucket::ICache => &mut self.icache,
            CpiBucket::FetchStall => &mut self.fetch_stall,
        }
    }

    /// Cycles charged to `bucket`.
    pub fn get(&self, bucket: CpiBucket) -> u64 {
        match bucket {
            CpiBucket::Base => self.base,
            CpiBucket::Reissue => self.reissue,
            CpiBucket::DCache => self.dcache,
            CpiBucket::QueueFull => self.queue_full,
            CpiBucket::ValueRefetch => self.value_refetch,
            CpiBucket::BranchMispredict => self.branch_mispredict,
            CpiBucket::ICache => self.icache,
            CpiBucket::FetchStall => self.fetch_stall,
        }
    }

    /// `(key, cycles)` for every bucket, in priority order.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        CpiBucket::all().map(|b| (b.key(), self.get(b)))
    }

    /// Total cycles accounted; equals `SimStats::cycles` for a run.
    pub fn total(&self) -> u64 {
        CpiBucket::all().iter().map(|&b| self.get(b)).sum()
    }

    /// Fraction of total cycles in `bucket`, in `[0, 1]` (0 when empty).
    pub fn fraction(&self, bucket: CpiBucket) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }
}

impl ToJson for CpiStack {
    fn to_json(&self) -> Json {
        Json::obj(self.entries().map(|(k, v)| (k, Json::from(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut s = CpiStack::default();
        s.add(CpiBucket::Base, 10);
        s.add(CpiBucket::DCache, 5);
        s.add(CpiBucket::Base, 1);
        assert_eq!(s.get(CpiBucket::Base), 11);
        assert_eq!(s.total(), 16);
        assert_eq!(s.fraction(CpiBucket::DCache), 5.0 / 16.0);
        assert_eq!(CpiStack::default().fraction(CpiBucket::Base), 0.0);
    }

    #[test]
    fn keys_are_unique_and_cover_every_bucket() {
        let mut keys: Vec<&str> = CpiBucket::all().iter().map(|b| b.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn json_has_one_member_per_bucket() {
        let mut s = CpiStack::default();
        s.add(CpiBucket::QueueFull, 3);
        let j = s.to_json();
        assert_eq!(j.as_obj().unwrap().len(), 8);
        assert_eq!(j.get("queue_full").and_then(|v| v.as_u64()), Some(3));
    }
}
