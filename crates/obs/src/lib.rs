//! Observability layer for the RVP reproduction.
//!
//! Seven pieces, designed so that the simulator's hot loop pays nothing
//! when they are off:
//!
//! 1. **Cycle accounting** ([`CpiStack`], [`CpiBucket`]) — the timing
//!    simulator charges every cycle to exactly one bucket, so the stack
//!    sums to total cycles by construction. Always on (O(1) per cycle).
//! 2. **Windowed time-series sampling** ([`Sampler`],
//!    [`WindowSample`]) — per-N-cycle counter deltas in a bounded
//!    ring; shows warm-up vs. steady state. Gated by [`ObsConfig`].
//! 3. **Per-PC predictor telemetry** ([`PcTable`], [`PcEntry`]) —
//!    which static instructions a scheme wins and loses on, as top-K
//!    tables in the final [`ObsReport`]. Gated by [`ObsConfig`].
//! 4. **A structured log facade** ([`log`]) — leveled JSON-lines
//!    events filtered by `RVP_LOG`, written to stderr or
//!    `RVP_LOG_FILE`.
//! 5. **Server-side metrics** ([`ServeMetrics`], [`LatencyHistogram`])
//!    — lock-free request/queue/cache counters and a power-of-two
//!    latency histogram for the `rvp-serve` daemon's `/metrics`
//!    endpoint.
//! 6. **Span tracing** ([`span`], the [`span!`] macro) — hierarchical
//!    wall-clock spans across serve → grid → cell → simulator, with
//!    Chrome trace-event (Perfetto) and folded-stack exporters.
//!    Disarmed cost is one relaxed atomic load.
//! 7. **A unified metrics registry** ([`MetricsRegistry`]) — one pull
//!    model over the scattered counters, with Prometheus text
//!    exposition; and the mockable monotonic [`Clock`] everything
//!    above stamps time with.

pub mod cancel;
pub mod clock;
mod config;
mod cpi;
pub mod log;
mod pcstats;
mod registry;
mod report;
mod sample;
mod serve_metrics;
pub mod span;

pub use cancel::{CancelReason, CancelToken};
pub use clock::Clock;
pub use config::ObsConfig;
pub use cpi::{CpiBucket, CpiStack};
pub use pcstats::{PcEntry, PcTable};
pub use registry::{Metric, MetricKind, MetricsRegistry};
pub use report::ObsReport;
pub use sample::{CounterSnapshot, Sampler, WindowSample};
pub use serve_metrics::{LatencyHistogram, ServeMetrics};
pub use span::{SpanGuard, SpanRecord, TraceData};
