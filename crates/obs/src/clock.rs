//! A monotonic microsecond clock, mockable for tests.
//!
//! Spans, the serve latency histogram and the queue-wait accounting all
//! need the same property: timestamps that only move forward and that
//! two threads can compare. `SystemTime` gives neither (it can step
//! backwards under NTP); `Instant` gives both but cannot be faked in a
//! test. [`Clock`] wraps a process-global `Instant` epoch behind an
//! enum with a mock variant, so production code pays one subtraction
//! and tests can advance time by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The process-global epoch all monotonic readings are relative to.
/// Every [`Clock::monotonic`] shares it, so timestamps from different
/// clock handles (and different threads) live on one timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-global epoch.
pub fn monotonic_us() -> u64 {
    epoch().elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// A microsecond clock: monotonic in production, hand-advanced in
/// tests. Cloning is cheap and clones of a mock share their timeline.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// Real time relative to the process-global epoch.
    #[default]
    Monotonic,
    /// A manually advanced timeline (shared by clones).
    Mock(Arc<AtomicU64>),
}

impl Clock {
    /// The production clock.
    pub fn monotonic() -> Clock {
        Clock::Monotonic
    }

    /// A mock clock starting at `start_us`; advance it with
    /// [`Clock::advance_us`].
    pub fn mock(start_us: u64) -> Clock {
        Clock::Mock(Arc::new(AtomicU64::new(start_us)))
    }

    /// Current reading in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Monotonic => monotonic_us(),
            Clock::Mock(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a mock clock; a no-op on the monotonic clock (real time
    /// does not take instructions).
    pub fn advance_us(&self, us: u64) {
        if let Clock::Mock(t) = self {
            t.fetch_add(us, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_decreases() {
        let clock = Clock::monotonic();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn mock_advances_and_clones_share_time() {
        let clock = Clock::mock(100);
        let twin = clock.clone();
        assert_eq!(clock.now_us(), 100);
        twin.advance_us(50);
        assert_eq!(clock.now_us(), 150, "clones share the mock timeline");
        Clock::monotonic().advance_us(1_000_000);
    }
}
