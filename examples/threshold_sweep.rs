//! Ablation: the confidence threshold of the paper's 3-bit resetting
//! counters.
//!
//! Run with: `cargo run --release --example threshold_sweep`
//!
//! The paper fixes the threshold at 7 ("we only predict after we have
//! seen seven consecutive hits. This is a conservative filter, but is
//! consistent with our machine model"). This sweep shows the
//! coverage/accuracy/performance trade-off that choice sits on, and
//! contrasts resetting with saturating counters.

use rvp_core::{
    new_value_predictor, CounterPolicy, Input, Recovery, Scheme, Scope, Simulator, UarchConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = rvp_core::by_name("hydro2d").expect("workload");
    let program = wl.program(Input::Ref);
    let budget = 250_000;

    let base = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .run(&program, budget)?;
    println!("workload: hydro2d; baseline IPC {:.3}\n", base.ipc());
    println!(
        "{:>10} {:>10} {:>11} | {:>8} {:>9} {:>9}",
        "recovery", "policy", "threshold", "speedup", "coverage", "accuracy"
    );
    for recovery in [Recovery::Selective, Recovery::Refetch] {
        for policy in [CounterPolicy::Resetting, CounterPolicy::Saturating] {
            for threshold in [1u8, 3, 5, 7] {
                let name = match policy {
                    CounterPolicy::Resetting => "reset",
                    CounterPolicy::Saturating => "sat",
                };
                let spec = format!("drvp:threshold={threshold},policy={name}");
                let scheme =
                    Scheme::new(spec.clone(), Scope::AllInsts, new_value_predictor(&spec)?);
                let s = Simulator::new(UarchConfig::table1(), scheme, recovery)
                    .run(&program, budget)?;
                println!(
                    "{:>10} {:>10} {:>11} | {:>8.4} {:>8.1}% {:>8.1}%",
                    format!("{recovery:?}"),
                    format!("{policy:?}"),
                    threshold,
                    s.ipc() / base.ipc(),
                    100.0 * s.coverage(),
                    100.0 * s.accuracy()
                );
            }
        }
    }
    println!(
        "\nHigher thresholds trade coverage for accuracy. Under cheap selective\n\
         reissue the machine tolerates aggressive prediction, but under refetch\n\
         recovery every mispredict costs a pipeline refill — exactly why the\n\
         paper pairs its conservative 7-of-7 resetting filter with the simpler\n\
         recovery schemes it evaluates."
    );
    Ok(())
}
