//! The compiler side of the paper, end to end: profile a program,
//! reallocate its registers to expose value reuse (Figure 2's
//! transformations), and measure the difference on plain dynamic RVP —
//! no oracle assistance, just the transformed code.
//!
//! Run with: `cargo run --release --example compiler_assist`

use rvp_core::{
    reallocate, PlanScope, Profile, ProfileConfig, Program, ProgramBuilder, ReallocOptions,
    Recovery, Reg, Scheme, Simulator, UarchConfig,
};

/// A kernel with the paper's Figure 2 patterns baked in:
///  * a load that reloads a just-stored value while its producer's
///    register is dead (Fig. 2a/2b: correlated values / memory renaming);
///  * a constant load whose destination register is clobbered between
///    executions (Fig. 2c: last-value reuse blocked by an intervening
///    write).
fn kernel() -> Program {
    let (p, q, d, w, v, n) =
        (Reg::int(1), Reg::int(2), Reg::int(5), Reg::int(3), Reg::int(4), Reg::int(6));
    let values: Vec<u64> = (0..128u64).map(|i| i * 11 + 5).collect();
    let mut b = ProgramBuilder::new();
    b.data(0x1000, &values);
    b.data(0x4000, &[42]);
    b.li(p, 0x1000);
    b.li(q, 0x4000);
    b.li(n, 128 * 200);
    b.label("loop");
    b.ld(d, p, 0); // a fresh value each iteration
    b.st(d, p, 0x2000); // spilled...
    b.ld(w, p, 0x2000); // ...and reloaded while `d` is dead (Fig. 2b)
    b.mul(w, w, 3); // long-latency work dependent on the reload
    b.mul(w, w, 5);
    b.ld(v, q, 0); // constant 42 ...
    b.add(v, v, w); // ... but `v` is clobbered right away (Fig. 2c)
    b.addi(p, p, 8);
    b.and(p, p, 0x13f8); // wrap within the table
    b.subi(n, n, 1);
    b.bnez(n, "loop");
    b.st(v, Reg::int(30), -8);
    b.halt();
    b.build().expect("kernel builds")
}

fn measure(program: &Program) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let budget = 300_000;
    let base = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .run(program, budget)?;
    let drvp = Simulator::new(
        UarchConfig::table1(),
        Scheme::drvp(rvp_core::Scope::AllInsts, rvp_core::PredictionPlan::new()),
        Recovery::Selective,
    )
    .run(program, budget)?;
    Ok((drvp.ipc() / base.ipc(), drvp.coverage()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = kernel();
    let profile =
        Profile::collect(&original, &ProfileConfig { max_insts: 400_000, min_execs: 32 })?;

    let opts =
        ReallocOptions { threshold: 0.8, scope: PlanScope::AllInsts, use_dead: true, use_lv: true };
    let outcome = reallocate(&original, &profile, &opts);
    println!(
        "reallocation: {}/{} dead-register reuses applied, {}/{} last-value reuses applied\n",
        outcome.dead_applied, outcome.dead_attempted, outcome.lv_applied, outcome.lv_attempted
    );

    println!("original loop body:");
    print_loop(&original);
    println!("\ntransformed loop body:");
    print_loop(&outcome.program);

    let (s0, c0) = measure(&original)?;
    let (s1, c1) = measure(&outcome.program)?;
    println!();
    println!("dynamic RVP on the original:    speedup {s0:.3}, coverage {:.1}%", 100.0 * c0);
    println!("dynamic RVP on the transformed: speedup {s1:.3}, coverage {:.1}%", 100.0 * c1);
    println!(
        "\nThe transformation changed no computation — only register names — yet the\n\
         hardware now finds reuse it could not see before."
    );
    Ok(())
}

fn print_loop(p: &Program) {
    let start = p.label("loop").expect("loop label");
    for pc in start..p.len().min(start + 10) {
        println!("  {pc:3}  {}", p.insts()[pc]);
    }
}
