//! A bytecode-interpreter scenario: the workload class the paper's
//! introduction motivates (type tags and dispatch values that keep
//! reproducing what's already in the registers).
//!
//! Run with: `cargo run --release --example interpreter_dispatch`
//!
//! Builds a small stack interpreter with a jump-table dispatch, profiles
//! its register-value reuse (the paper's Section 5 lists), and compares
//! prediction schemes on it.

use rvp_core::{
    PlanScope, Profile, ProfileConfig, Program, ProgramBuilder, Recovery, Reg, Scheme, Simulator,
    UarchConfig,
};

fn interpreter() -> Result<Program, Box<dyn std::error::Error>> {
    // Bytecode: 0 = push-const, 1 = add, 2 = halt-loop-back. The stream
    // is dominated by long runs of push-const of the same literal — an
    // interpreter folding the same constant over and over, the register-
    // value-reuse pattern the paper's introduction motivates.
    let ops: Vec<u64> = (0..96)
        .map(|i| match i % 32 {
            31 => 1u64,  // occasional add
            _ => 7 << 8, // push 7 (op 0)
        })
        .collect();

    // Two-pass build for the jump table.
    let build = |table: &[u64; 3]| -> Program {
        let (pc_, opv, opc, arg) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let (sp, t, jt, target) = (Reg::int(5), Reg::int(6), Reg::int(7), Reg::int(8));
        let (tos, n) = (Reg::int(16), Reg::int(17));
        let mut b = ProgramBuilder::new();
        b.data(0x1_0000, &ops);
        b.data(0x2_0000, table);
        b.zeros(0x3_0000, 256);
        b.li(jt, 0x2_0000);
        b.li(n, 3000);
        b.label("restart");
        b.li(pc_, 0x1_0000);
        b.li(sp, 0x3_0000);
        b.label("dispatch");
        b.ld(opv, pc_, 0);
        b.and(opc, opv, 0xff);
        b.srl(arg, opv, 8);
        b.sll(t, opc, 3);
        b.add(t, t, jt);
        b.ld(target, t, 0);
        b.jmp(target, &["op_push", "op_add", "op_end"]);
        b.label("op_push");
        b.st(arg, sp, 0);
        b.addi(sp, sp, 8);
        b.br("next");
        b.label("op_add");
        b.subi(sp, sp, 8);
        b.ld(tos, sp, 0);
        b.ld(t, sp, -8);
        b.add(t, t, tos);
        b.st(t, sp, -8);
        b.label("next");
        b.addi(pc_, pc_, 8);
        b.subi(t, pc_, 0x1_0000 + 8 * 96);
        b.bnez(t, "dispatch");
        b.label("op_end");
        b.subi(n, n, 1);
        b.bnez(n, "restart");
        b.halt();
        b.build().expect("interpreter builds")
    };
    let first = build(&[0, 0, 0]);
    let table = [
        first.label("op_push").unwrap() as u64,
        first.label("op_add").unwrap() as u64,
        first.label("op_end").unwrap() as u64,
    ];
    Ok(build(&table))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = interpreter()?;

    // Profile the register-value reuse (Section 5 of the paper).
    let profile = Profile::collect(&program, &ProfileConfig { max_insts: 400_000, min_execs: 32 })?;
    let lists = profile.reuse_lists(&program, 0.8, PlanScope::AllInsts);
    println!("register-value reuse profile at the 80% threshold:");
    println!("  {} instructions with same-register reuse", lists.same.len());
    println!("  {} correlated with a dead register", lists.dead.len());
    println!("  {} correlated with a live register", lists.live.len());
    println!("  {} with last-value reuse", lists.last_value.len());
    println!();

    let budget = 400_000;
    let base = Simulator::new(UarchConfig::table1(), Scheme::no_predict(), Recovery::Selective)
        .run(&program, budget)?;
    println!("{:>28}: IPC {:.3}", "no prediction", base.ipc());
    for (name, scheme) in [
        ("lvp (all insts)", Scheme::lvp_all()),
        (
            "dynamic RVP (all insts)",
            Scheme::drvp(rvp_core::Scope::AllInsts, rvp_core::PredictionPlan::new()),
        ),
        (
            "dynamic RVP + dead/lv assist",
            Scheme::drvp(
                rvp_core::Scope::AllInsts,
                profile.assist_plan(&program, 0.8, PlanScope::AllInsts, rvp_core::Assist::DeadLv),
            ),
        ),
    ] {
        let s = Simulator::new(UarchConfig::table1(), scheme, Recovery::Selective)
            .run(&program, budget)?;
        println!(
            "{name:>28}: IPC {:.3}  ({:+.1}%), coverage {:.1}%",
            s.ipc(),
            100.0 * (s.ipc() / base.ipc() - 1.0),
            100.0 * s.coverage()
        );
    }
    Ok(())
}
