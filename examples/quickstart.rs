//! Quickstart: build a small program, watch register value prediction
//! speed it up.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The program walks variable-stride records whose step field is almost
//! always the same value, so the step register keeps receiving the value
//! it already holds — and that load sits on the loop-carried address
//! chain. We simulate it on the paper's Table 1 machine without
//! prediction, with buffer-based last-value prediction, and with
//! storageless dynamic RVP.

use rvp_core::{
    new_value_predictor, ProgramBuilder, Recovery, Reg, Scheme, Scope, Simulator, UarchConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A traversal whose *address advance* depends on loaded step values —
    // a loop-carried load→add chain, like scanning variable-stride
    // records. The steps are nearly always 8, so the step register keeps
    // receiving the value it already holds: predicting it breaks the
    // carried chain.
    let (ptr, step, acc, n) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let table: Vec<u64> = (0..512u64).map(|i| if i % 61 == 60 { 16 } else { 8 }).collect();

    let mut b = ProgramBuilder::new();
    b.data(0x1_0000, &table);
    b.li(ptr, 0x1_0000);
    b.li(acc, 0);
    b.li(n, 60_000);
    b.label("loop");
    b.ld(step, ptr, 0); // almost always 8: high register-value reuse
    b.add(ptr, ptr, step); // the carried chain runs through the load
    b.and(ptr, ptr, 0x1_0ff8); // wrap within the table
    b.add(acc, acc, step);
    b.subi(n, n, 1);
    b.bnez(n, "loop");
    b.st(acc, Reg::int(30), -8);
    b.halt();
    let program = b.build()?;

    println!("simulating {} static instructions on the paper's Table 1 machine\n", program.len());
    let budget = 500_000;
    let mut base_ipc = 0.0;
    // Predictors come from the string-keyed registry: any spec that
    // `rvp-grid --schemes` accepts works here too.
    for (name, scheme) in [
        ("no prediction", Scheme::no_predict()),
        (
            "last-value prediction (8 KiB value buffer)",
            Scheme::new("lvp", Scope::LoadsOnly, new_value_predictor("lvp")?),
        ),
        (
            "dynamic RVP (384 B of counters, no values)",
            Scheme::new("drvp", Scope::LoadsOnly, new_value_predictor("drvp")?),
        ),
    ] {
        let stats = Simulator::new(UarchConfig::table1(), scheme, Recovery::Selective)
            .run(&program, budget)?;
        if base_ipc == 0.0 {
            base_ipc = stats.ipc();
        }
        println!(
            "{name:>45}: IPC {:.3}  (speedup {:+.1}%)  coverage {:.1}%  accuracy {:.1}%",
            stats.ipc(),
            100.0 * (stats.ipc() / base_ipc - 1.0),
            100.0 * stats.coverage(),
            100.0 * stats.accuracy(),
        );
    }
    println!(
        "\nRVP reads its predictions from the register file itself — no value\n\
         storage at all — yet competes with the buffer-based predictor."
    );
    Ok(())
}
