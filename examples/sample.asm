; A sparse-table scan with register-value reuse, for `rvp-sim`:
;
;   cargo run --release -p rvp-core --bin rvp-sim -- examples/sample.asm \
;       --scheme drvp_all
;
; The table is mostly zeros, so the load keeps producing the value its
; destination register already holds — the paper's storageless prediction.

.data 0x10000: 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 3
  li r1, #0x10000     ; table base
  li r2, #0           ; accumulator
  li r3, #40000       ; iterations
loop:
  ldd r4, 0(r1)       ; mostly zero: high same-register reuse
  mul r5, r4, #3      ; dependent long-latency work
  add r2, r2, r5
  and r2, r2, #0xffff
  add r1, r1, #8
  and r1, r1, #0x1007f ; wrap within the 16-entry table
  sub r3, r3, #1
  bne r3, loop
  std r2, -8(r30)
  halt
