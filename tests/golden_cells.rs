//! Golden-cell bit-identity: the registry refactor's contract with the
//! past. Every paper scheme's cell JSON — stats, CPI stack, the lot —
//! must match the fixtures captured from the pre-registry enum
//! implementation byte for byte, on a register-heavy workload (`li`)
//! and a memory-heavy one (`go`).
//!
//! Fixtures live in `tests/fixtures/golden_cells/<workload>-<label>.json`
//! and were produced with `RVP_MEASURE_INSTS=60000`,
//! `RVP_PROFILE_INSTS=120000` and `Runner` defaults otherwise. To
//! regenerate after an *intentional* modelling change, delete the
//! fixture files and rerun this test with `RVP_BLESS_GOLDEN=1`.

use std::path::PathBuf;

use rvp_core::{by_name, paper_schemes, Runner, ToJson};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_cells")
}

#[test]
fn paper_scheme_cells_are_bit_identical_to_the_fixtures() {
    let runner = Runner { measure_insts: 60_000, profile_insts: 120_000, ..Runner::default() };
    let bless = std::env::var_os("RVP_BLESS_GOLDEN").is_some();
    let mut mismatches = Vec::new();

    for workload in ["li", "go"] {
        let wl = by_name(workload).expect("workload exists");
        for scheme in &paper_schemes() {
            let result = runner.run(&wl, scheme).expect("cell runs");
            let got = format!("{}\n", result.to_json());
            let path = fixture_dir().join(format!("{workload}-{}.json", scheme.label()));
            if bless && !path.exists() {
                std::fs::write(&path, &got).expect("write fixture");
                continue;
            }
            let want = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            if got != want {
                mismatches.push(format!("{workload}/{}", scheme.label()));
            }
        }
    }

    assert!(
        mismatches.is_empty(),
        "cell JSON drifted from the pre-registry fixtures: {}",
        mismatches.join(", ")
    );
}

#[test]
fn fixture_set_covers_exactly_the_paper_grid() {
    let schemes = paper_schemes();
    assert_eq!(schemes.len(), 15, "the paper evaluates 15 schemes");
    let mut expected: Vec<String> = Vec::new();
    for workload in ["li", "go"] {
        for scheme in &schemes {
            expected.push(format!("{workload}-{}.json", scheme.label()));
        }
    }
    let mut on_disk: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    expected.sort();
    on_disk.sort();
    assert_eq!(on_disk, expected, "fixture files must match the paper grid exactly");
}
