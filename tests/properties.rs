//! Property-based tests over randomly generated programs: the emulator,
//! the timing model, the profiler and the reallocation pass must agree
//! on architectural behaviour no matter what the program looks like.

use proptest::prelude::*;
use rvp_core::{
    reallocate, Emulator, PredictionPlan, Profile, ProfileConfig, Program, ProgramBuilder,
    ReallocOptions, Recovery, Reg, Scheme, Simulator, UarchConfig,
};

const SCRATCH: u64 = 0x1_0000;

/// One random straight-line body instruction. Everything is total: no
/// traps, no unbounded control flow.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu { op: u8, dst: u8, a: u8, b: u8 },
    AluImm { op: u8, dst: u8, a: u8, imm: i16 },
    Load { dst: u8, slot: u8 },
    Store { src: u8, slot: u8 },
    Mov { dst: u8, src: u8 },
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (0..10u8, 1..8u8, 1..8u8, 1..8u8).prop_map(|(op, dst, a, b)| BodyOp::Alu { op, dst, a, b }),
        (0..10u8, 1..8u8, 1..8u8, any::<i16>()).prop_map(|(op, dst, a, imm)| BodyOp::AluImm {
            op,
            dst,
            a,
            imm
        }),
        (1..8u8, 0..32u8).prop_map(|(dst, slot)| BodyOp::Load { dst, slot }),
        (1..8u8, 0..32u8).prop_map(|(src, slot)| BodyOp::Store { src, slot }),
        (1..8u8, 1..8u8).prop_map(|(dst, src)| BodyOp::Mov { dst, src }),
    ]
}

fn emit(b: &mut ProgramBuilder, op: &BodyOp) {
    let base = Reg::int(28);
    match *op {
        BodyOp::Alu { op, dst, a, b: src } => {
            let (dst, a, src) = (Reg::int(dst), Reg::int(a), Reg::int(src));
            match op {
                0 => b.add(dst, a, src),
                1 => b.sub(dst, a, src),
                2 => b.mul(dst, a, src),
                3 => b.and(dst, a, src),
                4 => b.or(dst, a, src),
                5 => b.xor(dst, a, src),
                6 => b.cmpeq(dst, a, src),
                7 => b.cmplt(dst, a, src),
                8 => b.div(dst, a, src),
                _ => b.rem(dst, a, src),
            };
        }
        BodyOp::AluImm { op, dst, a, imm } => {
            let (dst, a, imm) = (Reg::int(dst), Reg::int(a), i64::from(imm));
            match op {
                0 => b.add(dst, a, imm),
                1 => b.sub(dst, a, imm),
                2 => b.mul(dst, a, imm),
                3 => b.and(dst, a, imm),
                4 => b.or(dst, a, imm),
                5 => b.xor(dst, a, imm),
                6 => b.cmpeq(dst, a, imm),
                7 => b.cmplt(dst, a, imm),
                8 => b.sll(dst, a, imm & 63),
                _ => b.srl(dst, a, imm & 63),
            };
        }
        BodyOp::Load { dst, slot } => {
            b.ld(Reg::int(dst), base, 8 * i64::from(slot));
        }
        BodyOp::Store { src, slot } => {
            b.st(Reg::int(src), base, 8 * i64::from(slot));
        }
        BodyOp::Mov { dst, src } => {
            b.mov(Reg::int(dst), Reg::int(src));
        }
    }
}

/// A random but always-terminating program: init, a counted loop of
/// random body ops, halt.
fn arb_program() -> impl Strategy<Value = (Program, u64)> {
    (
        proptest::collection::vec(any::<i32>(), 8),
        proptest::collection::vec(body_op(), 1..24),
        1..40u64,
        proptest::collection::vec(any::<u64>(), 32),
    )
        .prop_map(|(inits, body, iters, data)| {
            let mut b = ProgramBuilder::new();
            b.data(SCRATCH, &data);
            for (i, v) in inits.iter().enumerate() {
                b.li(Reg::int(i as u8 + 1), i64::from(*v));
            }
            b.li(Reg::int(28), SCRATCH as i64);
            b.li(Reg::int(27), iters as i64);
            b.label("loop");
            for op in &body {
                emit(&mut b, op);
            }
            b.subi(Reg::int(27), Reg::int(27), 1);
            b.bnez(Reg::int(27), "loop");
            b.halt();
            let expected = 10 + iters * (body.len() as u64 + 2) + 1;
            (b.build().expect("generated programs are well-formed"), expected)
        })
}

/// Richer shape: a loop containing a data-dependent diamond, a call to a
/// generated leaf procedure, and a jump-table dispatch — the control
/// structures that stress the CFG/web/colouring machinery and the fetch
/// unit. Still statically terminating.
fn arb_structured_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(body_op(), 1..10),
        proptest::collection::vec(body_op(), 1..10),
        proptest::collection::vec(body_op(), 1..8),
        1..30u64,
        proptest::collection::vec(any::<u64>(), 32),
    )
        .prop_map(|(then_ops, else_ops, callee_ops, iters, data)| {
            use rvp_isa::analysis::abi;
            let a0 = Reg::int(16);
            // The loop counter and scratch base live in callee-saved
            // registers because they cross the call (as a compiler would
            // allocate them); everything caller-saved is re-established
            // after the call before any read.
            let (n, base) = (Reg::int(9), Reg::int(10));
            let mut b = ProgramBuilder::new();
            b.data(SCRATCH, &data);
            b.proc("main");
            b.li(base, SCRATCH as i64);
            b.li(n, iters as i64);
            b.label("loop");
            for i in 1..8u8 {
                b.li(Reg::int(i), i64::from(i) * 3);
            }
            b.li(Reg::int(28), SCRATCH as i64);
            // Data-dependent diamond.
            b.and(Reg::int(1), n, 1);
            b.beqz(Reg::int(1), "else");
            for op in &then_ops {
                emit(&mut b, op);
            }
            b.br("join");
            b.label("else");
            for op in &else_ops {
                emit(&mut b, op);
            }
            b.label("join");
            // Jump-table dispatch on the loop parity.
            b.and(Reg::int(2), n, 1);
            b.li(Reg::int(3), 0x9000);
            b.sll(Reg::int(2), Reg::int(2), 3);
            b.add(Reg::int(3), Reg::int(3), Reg::int(2));
            b.ld(Reg::int(4), Reg::int(3), 0);
            b.jmp(Reg::int(4), &["case0", "case1"]);
            b.label("case0");
            b.addi(Reg::int(5), Reg::int(5), 1);
            b.st(Reg::int(5), base, 8);
            b.br("cont");
            b.label("case1");
            b.addi(Reg::int(6), Reg::int(6), 1);
            b.st(Reg::int(6), base, 16);
            b.label("cont");
            // Call a leaf; afterwards only ABI-defined registers are read.
            b.mov(a0, n);
            b.call("leaf");
            b.st(Reg::int(0), base, 0);
            b.subi(n, n, 1);
            b.bnez(n, "loop");
            b.halt();
            b.proc("leaf");
            // A leaf only reads registers it defines (or its arguments);
            // reading a caller's scratch register would be undefined
            // behaviour under the ABI the analyses assume.
            for i in 1..8u8 {
                b.li(Reg::int(i), i64::from(i) * 7 + 1);
            }
            for op in &callee_ops {
                emit(&mut b, op);
            }
            b.add(Reg::int(0), a0, Reg::int(1));
            b.ret(abi::RA);
            // Resolve the jump table via a second pass.
            let first = b.build().expect("structured programs build");
            let table = [
                first.label("case0").expect("label") as u64,
                first.label("case1").expect("label") as u64,
            ];
            // Rebuild with the table in memory.
            rebuild_with_table(&first, table)
        })
}

/// Writes the jump table into a fresh copy of the program's data space.
fn rebuild_with_table(p: &Program, table: [u64; 2]) -> Program {
    let text = p.to_asm();
    let with_table = format!(".data 0x9000: {}, {}\n{}", table[0], table[1], text);
    rvp_core::parse_asm(&with_table).expect("reassembly with table succeeds")
}

fn final_state(p: &Program) -> (u64, Vec<u64>, Vec<u64>) {
    let mut emu = Emulator::new(p);
    while emu.step().unwrap().is_some() {}
    let regs: Vec<u64> = (1..9).map(|i| emu.reg(Reg::int(i))).collect();
    let mem: Vec<u64> = (0..32).map(|i| emu.memory().read_u64(SCRATCH + 8 * i)).collect();
    (emu.committed(), regs, mem)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The emulator executes exactly the statically-expected number of
    /// instructions and is deterministic.
    #[test]
    fn emulator_is_deterministic((program, expected) in arb_program()) {
        let (n1, r1, m1) = final_state(&program);
        let (n2, r2, m2) = final_state(&program);
        prop_assert_eq!(n1, expected);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(m1, m2);
    }

    /// Every prediction scheme and recovery model commits exactly the
    /// instructions the architecture commits — speculation may never
    /// leak into architectural state.
    #[test]
    fn timing_model_commits_architectural_counts((program, expected) in arb_program()) {
        for recovery in [Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
            for scheme in [
                Scheme::no_predict(),
                Scheme::lvp_all(),
                Scheme::drvp(rvp_core::Scope::AllInsts, PredictionPlan::new()),
                Scheme::gabbay(rvp_core::Scope::AllInsts),
            ] {
                let stats = Simulator::new(UarchConfig::table1(), scheme, recovery)
                    .run(&program, 1 << 20)
                    .unwrap();
                prop_assert_eq!(stats.committed, expected);
                prop_assert!(stats.cycles > 0);
                prop_assert!(stats.correct_predictions <= stats.predictions);
            }
        }
    }

    /// Aggressive register reallocation (low threshold, tiny exec
    /// filter) must still preserve the program's final state.
    #[test]
    fn reallocation_preserves_semantics((program, _) in arb_program()) {
        let profile = Profile::collect(
            &program,
            &ProfileConfig { max_insts: 100_000, min_execs: 4 },
        ).unwrap();
        let opts = ReallocOptions { threshold: 0.5, ..ReallocOptions::default() };
        let transformed = reallocate(&program, &profile, &opts).program;
        let (n1, r1, m1) = final_state(&program);
        let (n2, _r2, m2) = final_state(&transformed);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(m1, m2);
        // Callee-saved registers are ABI-fixed, so they must also agree.
        let _ = r1;
    }

    /// Structured programs (diamonds, calls, jump tables): the timing
    /// model agrees with the emulator under every scheme and recovery.
    #[test]
    fn structured_programs_simulate_consistently(program in arb_structured_program()) {
        let mut emu = Emulator::new(&program);
        while emu.step().unwrap().is_some() {}
        let expected = emu.committed();
        for recovery in [Recovery::Refetch, Recovery::Selective] {
            for scheme in [
                Scheme::no_predict(),
                Scheme::lvp_all(),
                Scheme::drvp(rvp_core::Scope::AllInsts, PredictionPlan::new()),
                Scheme::hw_correlation(
                    rvp_core::Scope::AllInsts,
                    rvp_core::CorrelationConfig::default(),
                ),
            ] {
                let stats = Simulator::new(UarchConfig::table1(), scheme, recovery)
                    .run(&program, 1 << 20)
                    .unwrap();
                prop_assert_eq!(stats.committed, expected);
            }
        }
    }

    /// Aggressive reallocation preserves semantics on structured programs
    /// too (multiple procedures, calls, indirect jumps).
    #[test]
    fn structured_reallocation_preserves_semantics(program in arb_structured_program()) {
        let profile = Profile::collect(
            &program,
            &ProfileConfig { max_insts: 60_000, min_execs: 4 },
        ).unwrap();
        let opts = ReallocOptions { threshold: 0.5, ..ReallocOptions::default() };
        let transformed = reallocate(&program, &profile, &opts).program;
        let run = |p: &Program| {
            let mut emu = Emulator::new(p);
            while emu.step().unwrap().is_some() {}
            let mem: Vec<u64> =
                (0..32).map(|i| emu.memory().read_u64(SCRATCH + 8 * i)).collect();
            (emu.committed(), mem)
        };
        prop_assert_eq!(run(&program), run(&transformed));
    }

    /// Textual assembly round-trips: parse(to_asm(p)) reproduces the
    /// instructions, data and entry of any generated program.
    #[test]
    fn assembler_round_trips((program, _) in arb_program()) {
        let text = program.to_asm();
        let back = rvp_core::parse_asm(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(program.insts(), back.insts());
        prop_assert_eq!(program.data(), back.data());
        prop_assert_eq!(program.entry(), back.entry());
    }

    /// Profiler invariants: rates are probabilities and the same-register
    /// hit count can never exceed executions.
    #[test]
    fn profile_rates_are_probabilities((program, _) in arb_program()) {
        let profile = Profile::collect(
            &program,
            &ProfileConfig { max_insts: 50_000, min_execs: 1 },
        ).unwrap();
        for pc in 0..program.len() {
            let s = &profile.stats()[pc];
            prop_assert!(s.same_hits <= s.execs);
            prop_assert!(s.lv_hits <= s.execs);
            let rate = profile.same_rate(pc);
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
