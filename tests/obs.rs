//! Observability invariants, end to end.
//!
//! The two load-bearing properties of the `rvp-obs` layer:
//!
//! 1. **Exhaustive cycle accounting** — for every (scheme, recovery)
//!    combination the CPI-stack buckets sum *exactly* to the run's total
//!    cycles. The attribution ladder charges each cycle to exactly one
//!    bucket, so this is an equality, not a tolerance check.
//! 2. **Self-describing artifacts** — every observability type's JSON
//!    output survives a parse round-trip bit-for-bit, so downstream
//!    tools (`rvp-report`, CI artifact consumers) can rely on the text
//!    form.

use rvp_core::{
    by_name, paper_schemes, Json, ObsConfig, Recovery, Runner, SchemeSpec, SimStats, ToJson,
    WindowSample,
};

fn quick_runner(recovery: Recovery) -> Runner {
    Runner {
        recovery,
        profile_insts: 60_000,
        measure_insts: 20_000,
        traces: None,
        obs: ObsConfig { sample_interval: 512, ring_capacity: 64, track_pc: true, top_k: 8 },
        ..Runner::default()
    }
}

/// Every cell of the paper grid accounts for every cycle, on a
/// register-heavy workload and a memory-heavy one.
#[test]
fn cpi_stack_sums_to_cycles_for_every_scheme_and_recovery() {
    for workload in ["li", "go"] {
        let wl = by_name(workload).expect("workload exists");
        for &recovery in &[Recovery::Refetch, Recovery::Reissue, Recovery::Selective] {
            let runner = quick_runner(recovery);
            for scheme in &paper_schemes() {
                let res = runner.run(&wl, scheme).expect("run succeeds");
                assert_eq!(
                    res.stats.cpi.total(),
                    res.stats.cycles,
                    "{workload}/{}/{recovery:?}: {:?}",
                    scheme.label(),
                    res.stats.cpi
                );
                assert!(res.stats.cycles > 0, "{workload}/{}", scheme.label());
            }
        }
    }
}

/// The instrumented run produces a coherent artifact: windows tile the
/// run, per-PC tables are bounded by `top_k` and ordered.
#[test]
fn obs_report_is_coherent() {
    let runner = quick_runner(Recovery::Selective);
    let res = runner
        .run(&by_name("li").expect("exists"), &SchemeSpec::parse("drvp_all").unwrap())
        .expect("runs");
    let obs = res.stats.obs.as_ref().expect("instrumented run carries a report");
    assert_eq!(obs.sample_interval, 512);

    let window_cycles: u64 = obs.samples.iter().map(|w| w.cycles).sum();
    let window_commits: u64 = obs.samples.iter().map(|w| w.committed).sum();
    assert_eq!(window_cycles + obs.dropped_windows * 512, res.stats.cycles);
    if obs.dropped_windows == 0 {
        assert_eq!(window_commits, res.stats.committed);
    }
    for pair in obs.samples.windows(2) {
        assert!(pair[0].end_cycle < pair[1].end_cycle, "windows must be ordered");
    }

    assert!(obs.top_costly.len() <= 8);
    assert!(obs.top_correct.len() <= 8);
    for pair in obs.top_correct.windows(2) {
        assert!(pair[0].correct >= pair[1].correct, "top-K must be sorted");
    }
    let total_correct: u64 = obs.top_correct.iter().map(|e| e.correct).sum();
    assert!(total_correct <= res.stats.correct_predictions);
}

/// The same cell with instrumentation off must time identically —
/// observation must not perturb the experiment.
#[test]
fn instrumentation_does_not_change_timing() {
    let wl = by_name("li").expect("exists");
    let on = quick_runner(Recovery::Selective);
    let off = Runner { obs: ObsConfig::off(), ..quick_runner(Recovery::Selective) };
    let scheme = SchemeSpec::parse("drvp_all_dead_lv").unwrap();
    let a = on.run(&wl, &scheme).expect("runs");
    let b = off.run(&wl, &scheme).expect("runs");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    assert_eq!(a.stats.cpi, b.stats.cpi);
    assert!(a.stats.obs.is_some());
    assert!(b.stats.obs.is_none());
}

/// Emitted observability JSON parses back to the identical value.
#[test]
fn obs_json_round_trips() {
    let runner = quick_runner(Recovery::Reissue);
    let res = runner
        .run(&by_name("go").expect("exists"), &SchemeSpec::parse("lvp_all").unwrap())
        .expect("runs");

    let stats_json = res.stats.to_json();
    let reparsed = Json::parse(&stats_json.to_string()).expect("emitted stats JSON parses");
    assert_eq!(reparsed, stats_json);

    let obs = res.stats.obs.as_ref().expect("instrumented");
    let obs_json = obs.to_json();
    assert_eq!(Json::parse(&obs_json.to_string()).expect("parses"), obs_json);

    let cpi_json = res.stats.cpi.to_json();
    assert_eq!(Json::parse(&cpi_json.to_string()).expect("parses"), cpi_json);

    let window = WindowSample {
        end_cycle: 4096,
        cycles: 4096,
        committed: 9000,
        predictions: 120,
        correct_predictions: 110,
        iq_int_occupancy_sum: 80_000,
        iq_fp_occupancy_sum: 12,
    };
    let wj = window.to_json();
    assert_eq!(Json::parse(&wj.to_string()).expect("parses"), wj);

    // The parsed tree exposes the invariant numerically too.
    let cpi = reparsed.get("cpi").expect("cpi member");
    let sum: u64 = cpi
        .as_obj()
        .expect("object")
        .iter()
        .map(|(_, v)| v.as_u64().expect("bucket counts are u64"))
        .sum();
    assert_eq!(Some(sum), reparsed.get("cycles").and_then(Json::as_u64));
}

/// `SimStats` default round-trips too (no obs member at all).
#[test]
fn default_stats_json_round_trips() {
    let j = SimStats::default().to_json();
    let r = Json::parse(&j.to_string()).expect("parses");
    assert_eq!(r, j);
    assert!(r.get("obs").is_none());
}
