//! Integration tests spanning every crate: workloads -> emulator ->
//! profiler -> reallocation -> timing simulation.

use rvp_core::{
    reallocate, Emulator, Input, Profile, ProfileConfig, ReallocOptions, Runner, SchemeSpec,
};

fn quick_runner() -> Runner {
    Runner { profile_insts: 200_000, measure_insts: 100_000, ..Runner::default() }
}

/// The committed-instruction count is an architectural property: no
/// prediction scheme or recovery model may change it.
#[test]
fn schemes_never_change_architectural_behaviour() {
    let r = quick_runner();
    for name in ["li", "mgrid"] {
        let wl = rvp_core::by_name(name).unwrap();
        let base = r.run(&wl, &SchemeSpec::parse("no_predict").unwrap()).unwrap();
        for label in [
            "lvp",
            "lvp_all",
            "srvp_dead",
            "drvp_all",
            "drvp_all_dead_lv",
            "Grp_all",
            "drvp_all_realloc",
        ] {
            let res = r.run(&wl, &SchemeSpec::parse(label).unwrap()).unwrap();
            assert_eq!(
                res.stats.committed, base.stats.committed,
                "{name}/{label} changed the committed count"
            );
        }
    }
}

/// Store-stream equivalence: register reallocation may change register
/// names only — every memory write must be identical.
#[test]
fn reallocation_preserves_the_store_stream() {
    for wl in rvp_core::all_workloads() {
        let program = wl.program(Input::Train);
        let profile =
            Profile::collect(&program, &ProfileConfig { max_insts: 150_000, min_execs: 32 })
                .unwrap();
        let transformed = reallocate(&program, &profile, &ReallocOptions::default()).program;

        let stores = |p: &rvp_core::Program| -> Vec<(u64, u64)> {
            let mut emu = Emulator::new(p);
            let mut out = Vec::new();
            let mut n = 0u64;
            while let Some(c) = emu.step().unwrap() {
                if let Some(addr) = c.eff_addr {
                    if p.insts()[c.pc].is_store() {
                        out.push((addr, emu.memory().read_u64(addr & !7)));
                    }
                }
                n += 1;
                if n > 400_000 {
                    break;
                }
            }
            out
        };
        assert_eq!(
            stores(&program),
            stores(&transformed),
            "{}: reallocation changed a store",
            wl.name()
        );
    }
}

/// Figure 1's categories are cumulative by construction; verify on every
/// workload.
#[test]
fn fig1_categories_are_cumulative_everywhere() {
    let r = quick_runner();
    for wl in rvp_core::all_workloads() {
        let row = r.fig1(&wl).unwrap();
        let [same, dead, any, lvp] = row.fractions();
        assert!(same <= dead && dead <= any && any <= lvp && lvp <= 1.0, "{}", wl.name());
        assert!(row.loads > 1_000, "{} barely loads", wl.name());
    }
}

/// The paper's headline orderings, averaged over the suite.
#[test]
fn paper_shapes_hold_on_average() {
    let r = quick_runner();
    let speedup = |label: &str| -> (f64, f64) {
        let scheme = SchemeSpec::parse(label).unwrap();
        let base_scheme = SchemeSpec::parse("no_predict").unwrap();
        let mut ipcs = Vec::new();
        let mut covs = Vec::new();
        for wl in rvp_core::all_workloads() {
            let base = r.run(&wl, &base_scheme).unwrap();
            let res = r.run(&wl, &scheme).unwrap();
            ipcs.push(res.stats.ipc() / base.stats.ipc());
            covs.push(res.stats.coverage());
        }
        (ipcs.iter().sum::<f64>() / ipcs.len() as f64, covs.iter().sum::<f64>() / covs.len() as f64)
    };
    let (drvp, drvp_cov) = speedup("drvp_all");
    let (dead_lv, dead_lv_cov) = speedup("drvp_all_dead_lv");
    let (grp, grp_cov) = speedup("Grp_all");

    // Dynamic RVP gains a few percent on average.
    assert!(drvp > 1.02, "drvp_all average speedup {drvp:.4}");
    // Compiler assistance adds coverage and performance.
    assert!(dead_lv_cov > drvp_cov, "{dead_lv_cov:.3} !> {drvp_cov:.3}");
    assert!(dead_lv >= drvp - 1e-9, "{dead_lv:.4} !>= {drvp:.4}");
    // The Gabbay register predictor trails PC-indexed dRVP in coverage.
    assert!(grp_cov < drvp_cov, "G&M coverage {grp_cov:.3} !< {drvp_cov:.3}");
    assert!(grp <= dead_lv + 1e-9);
}

/// Static marking writes `rvp_` opcodes into the program text.
#[test]
fn static_marking_is_visible_in_the_disassembly() {
    let wl = rvp_core::by_name("m88ksim").unwrap();
    let train = wl.program(Input::Train);
    let profile =
        Profile::collect(&train, &ProfileConfig { max_insts: 150_000, min_execs: 32 }).unwrap();
    let plan = profile.static_plan(&train, 0.8, rvp_core::SrvpLevel::Dead);
    assert!(!plan.is_empty(), "m88ksim must have static candidates");
    let marked =
        train.map_insts(|pc, i| if plan.contains(pc) { i.clone().with_rvp() } else { i.clone() });
    assert!(marked.disassemble().contains("rvp_ld"));
}

/// The 16-wide machine amplifies value prediction (Figure 8's point).
#[test]
fn wide_machine_amplifies_rvp() {
    let narrow = quick_runner();
    let wide = Runner {
        config: rvp_core::UarchConfig::wide16(),
        profile_insts: 200_000,
        measure_insts: 100_000,
        ..Runner::default()
    };
    let wl = rvp_core::by_name("m88ksim").unwrap();
    let gain = |r: &Runner| {
        let base = r.run(&wl, &SchemeSpec::parse("no_predict").unwrap()).unwrap();
        let rvp = r.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv").unwrap()).unwrap();
        rvp.stats.ipc() / base.stats.ipc()
    };
    let g_narrow = gain(&narrow);
    let g_wide = gain(&wide);
    assert!(g_wide > g_narrow, "wide gain {g_wide:.4} !> narrow gain {g_narrow:.4}");
}

/// Every workload round-trips through the textual assembler: parse(to_asm)
/// reproduces the instructions, data, procedures and entry point exactly.
#[test]
fn workloads_round_trip_through_the_assembler() {
    for wl in rvp_core::all_workloads() {
        let p1 = wl.program(Input::Train);
        let text = p1.to_asm();
        let p2 = rvp_core::parse_asm(&text).unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
        assert_eq!(p1.insts(), p2.insts(), "{}", wl.name());
        assert_eq!(p1.data(), p2.data(), "{}", wl.name());
        assert_eq!(p1.entry(), p2.entry(), "{}", wl.name());
        assert_eq!(p1.procedures(), p2.procedures(), "{}", wl.name());
    }
}

/// Profiles transfer across inputs: the train-derived plan must keep its
/// accuracy on ref (the paper's cross-input methodology).
#[test]
fn train_profile_predicts_ref_behaviour() {
    let r = quick_runner();
    for name in ["m88ksim", "hydro2d", "turb3d"] {
        let wl = rvp_core::by_name(name).unwrap();
        let res = r.run(&wl, &SchemeSpec::parse("drvp_all_dead_lv").unwrap()).unwrap();
        assert!(
            res.stats.accuracy() > 0.85,
            "{name}: train-derived plan only {:.1}% accurate on ref",
            100.0 * res.stats.accuracy()
        );
    }
}
